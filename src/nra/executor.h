#ifndef NESTRA_NRA_EXECUTOR_H_
#define NESTRA_NRA_EXECUTOR_H_

#include <deque>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "nested/linking_selection.h"
#include "nra/options.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

class QueryProfile;
class StageDag;

/// \brief The nested relational approach (Algorithm 1) with the paper's
/// optimizations, selected through NraOptions:
///
///  * top-down: reduce each block to T_i = σ_i(R_i), then left-outer hash
///    join the blocks along the (spanning) query tree on their correlated
///    predicates (a virtual Cartesian product when a subquery is not
///    correlated);
///  * bottom-up: nest by the retained attribute prefix keeping the child's
///    (linked attribute, primary key) and apply the linking selection —
///    strict when dropping is safe (root level, or every enclosing link
///    positive), pseudo otherwise;
///  * the result is the projection of the root's select list, with rows
///    whose root key was pseudo-padded filtered out.
///
/// With options.fused (the paper's "optimized" variant) linear queries run
/// as ONE sort followed by ONE streaming pass evaluating every level; tree
/// queries fuse each nest with its linking selection level-by-level.
class NraExecutor {
 public:
  explicit NraExecutor(const Catalog& catalog,
                       NraOptions options = NraOptions::Optimized())
      : catalog_(catalog),
        options_(options),
        num_threads_(ResolveNumThreads(options.num_threads)) {}

  /// Executes a bound query. `stats`, when non-null, receives the
  /// join-phase/nest-phase timing split and the intermediate result size.
  /// `profile`, when non-null AND `options.profile` is set, is cleared and
  /// filled with the per-stage operator-level profile (EXPLAIN ANALYZE);
  /// otherwise it is left untouched and profiling adds no work.
  Result<Table> Execute(const QueryBlock& root, NraStats* stats = nullptr,
                        QueryProfile* profile = nullptr);

  /// Parse + bind + execute.
  Result<Table> ExecuteSql(const std::string& sql, NraStats* stats = nullptr,
                           QueryProfile* profile = nullptr);

  /// Like ExecuteSql but also accepts compound statements
  /// (`UNION [ALL] | INTERSECT | EXCEPT`); branches execute independently
  /// and combine left-associatively with SQL set semantics. Stats aggregate
  /// across branches; profile stages are prefixed "branch<i>: " when the
  /// statement has more than one branch.
  Result<Table> ExecuteStatementSql(const std::string& sql,
                                    NraStats* stats = nullptr,
                                    QueryProfile* profile = nullptr);

  const NraOptions& options() const { return options_; }

 private:
  Result<Table> ExecuteFusedLinear(const std::vector<const QueryBlock*>& chain,
                                   NraStats* stats, QueryProfile* profile);
  Result<Table> ExecuteBottomUpLinear(
      const std::vector<const QueryBlock*>& chain, NraStats* stats,
      QueryProfile* profile);

  /// Pipelined (options_.pipelined) counterparts: the same stage sequences
  /// decomposed into a StageDag whose independent tasks — base-table
  /// evaluations of different blocks, most importantly — run concurrently
  /// on the shared pool. Task creation order equals the staged path's
  /// stage-emission order, so the merged profile (and the result, and
  /// NraStats' deterministic fields) are bit-identical to the staged
  /// functions above.
  Result<Table> ExecuteFusedLinearDag(
      const std::vector<const QueryBlock*>& chain, NraStats* stats,
      QueryProfile* profile);
  Result<Table> ExecuteBottomUpLinearDag(
      const std::vector<const QueryBlock*>& chain, NraStats* stats,
      QueryProfile* profile);
  Result<Table> ExecutePipelinedRecursive(const QueryBlock& root,
                                          NraStats* stats,
                                          QueryProfile* profile);

  /// Recursive DAG builder behind ExecutePipelinedRecursive: appends the
  /// tasks for `node`'s children (mirroring ComputeNode's traversal) to
  /// `dag` and returns the id of the last transform task. `prev` is the
  /// task producing the incoming `rel`; `bases` owns the per-block base
  /// tables (deque: stable addresses across emplace_back).
  int BuildComputeTaskDag(StageDag* dag, const QueryBlock& node,
                          std::vector<const QueryBlock*>* path,
                          const std::vector<std::string>& retained, int prev,
                          Table* rel, std::deque<Table>* bases);

  /// The "way up" of Algorithm 1 for one child link, shared by the
  /// pipelined task bodies: nest `*rel` by `retained` and apply the linking
  /// selection (one fused pass when options_.fused), padding `node`'s
  /// attributes in pseudo mode. Same stages, timers, and labels as the
  /// corresponding ComputeNode block.
  Status ApplyNestSelect(const QueryBlock& node, const QueryBlock& child,
                         const std::vector<std::string>& retained,
                         SelectionMode mode, Table* rel,
                         QueryProfile* profile);

  /// The recursive body of Algorithm 1 (original / tree-query path).
  /// `retained` lists the qualified attributes of blocks root..node;
  /// `path` is the block chain root..node for strict/pseudo decisions.
  Result<Table> ComputeNode(const QueryBlock& node, Table rel,
                            const std::vector<std::string>& retained,
                            std::vector<const QueryBlock*>* path,
                            NraStats* stats, QueryProfile* profile);

  /// Final projection (+ DISTINCT, + root-key NOT NULL guard).
  Result<Table> FinishRoot(const QueryBlock& root, Table rel,
                           QueryProfile* profile);

  const Catalog& catalog_;
  NraOptions options_;
  // options_.num_threads resolved once (0 = auto -> hardware concurrency)
  // and passed to every parallel-capable phase.
  int num_threads_ = 1;
};

}  // namespace nestra

#endif  // NESTRA_NRA_EXECUTOR_H_
