#ifndef NESTRA_BASELINE_UNNEST_SEMIJOIN_H_
#define NESTRA_BASELINE_UNNEST_SEMIJOIN_H_

#include <string>

#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief The classical unnesting baseline: a bottom-up pipeline of
/// semijoins (EXISTS / IN / θ SOME) and antijoins (NOT EXISTS, and ALL /
/// NOT IN via the negated comparison), as System A runs for Query 2a.
///
/// Faithful to the literature, including its limitations (Sections 2 and
/// 5.2 of the paper):
///  * ALL / NOT IN may only become an antijoin when the linked AND linking
///    attributes carry NOT NULL constraints — otherwise the antijoin keeps
///    tuples whose comparison is UNKNOWN and the rewrite is unsound;
///  * a block correlated to a non-adjacent ancestor cannot be unnested this
///    way ("either antijoin or semijoin keeps only one table['s]
///    information ... the other table information required by the further
///    processing might be lost");
///  * tree queries are out of scope for the pipeline.
class SemiAntiUnnester {
 public:
  explicit SemiAntiUnnester(const Catalog& catalog) : catalog_(catalog) {}

  /// Empty string when the pipeline applies; otherwise the reason it does
  /// not (the same reasons System A falls back to nested iteration).
  std::string CheckApplicable(const QueryBlock& root) const;

  /// Runs the pipeline; fails with InvalidArgument when not applicable.
  Result<Table> Execute(const QueryBlock& root);

 private:
  /// Maps a qualified attribute of some block in the query to its base
  /// table and unqualified column; used for NOT NULL lookups.
  bool IsAttrNotNull(const QueryBlock& root, const std::string& attr) const;

  const Catalog& catalog_;
};

}  // namespace nestra

#endif  // NESTRA_BASELINE_UNNEST_SEMIJOIN_H_
