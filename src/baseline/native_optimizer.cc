#include "baseline/native_optimizer.h"

#include "baseline/unnest_semijoin.h"
#include "plan/binder.h"

namespace nestra {

NativePlanChoice ChooseNativePlan(const QueryBlock& root,
                                  const Catalog& catalog) {
  NativePlanChoice choice;
  SemiAntiUnnester unnester(catalog);
  const std::string why_not = unnester.CheckApplicable(root);
  if (why_not.empty()) {
    choice.kind = NativePlanKind::kSemiAntiPipeline;
    choice.explanation = "unnested into a semijoin/antijoin pipeline";
  } else {
    choice.kind = NativePlanKind::kNestedIteration;
    choice.explanation = "nested iteration (" + why_not + ")";
  }
  return choice;
}

Result<Table> ExecuteNative(const QueryBlock& root, const Catalog& catalog,
                            NestedIterOptions iter_options,
                            NativePlanChoice* choice,
                            NestedIterStats* iter_stats) {
  const NativePlanChoice local = ChooseNativePlan(root, catalog);
  if (choice != nullptr) *choice = local;
  if (local.kind == NativePlanKind::kSemiAntiPipeline) {
    SemiAntiUnnester unnester(catalog);
    return unnester.Execute(root);
  }
  NestedIterationExecutor iter(catalog, iter_options);
  return iter.Execute(root, iter_stats);
}

Result<Table> ExecuteNativeSql(const std::string& sql, const Catalog& catalog,
                               NestedIterOptions iter_options,
                               NativePlanChoice* choice,
                               NestedIterStats* iter_stats) {
  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr root, ParseAndBind(sql, catalog));
  return ExecuteNative(*root, catalog, iter_options, choice, iter_stats);
}

}  // namespace nestra
