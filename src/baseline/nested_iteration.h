#ifndef NESTRA_BASELINE_NESTED_ITERATION_H_
#define NESTRA_BASELINE_NESTED_ITERATION_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/evaluator.h"
#include "nested/linking_predicate.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief Options for the tuple-at-a-time baseline.
struct NestedIterOptions {
  /// Probe a hash index on the first equality-correlated column of each
  /// single-table subquery block, mirroring the paper's description of
  /// System A ("lineitem is accessed by index rowid"). Without indexes every
  /// subquery evaluation scans the filtered inner relation.
  bool use_indexes = true;
};

struct NestedIterStats {
  int64_t outer_tuples = 0;    // rows of the outermost block iterated
  int64_t subquery_evals = 0;  // linking-predicate evaluations
  int64_t candidate_rows = 0;  // inner rows examined across all evals
  int64_t index_probes = 0;
};

/// \brief The nested iteration method ("the traditional nested iteration
/// method" of Kim's motivation, and System A's fallback plan for ALL /
/// NOT IN): for every outer tuple, evaluate each subquery directly —
/// recursively — and test the linking predicate under SQL three-valued
/// logic.
///
/// This executor is also the library's correctness ORACLE: it follows SQL
/// tuple-iteration semantics with no rewriting whatsoever, so every other
/// evaluation strategy is property-tested against it.
class NestedIterationExecutor {
 public:
  explicit NestedIterationExecutor(const Catalog& catalog,
                                   NestedIterOptions options = {})
      : catalog_(catalog), options_(options) {}

  Result<Table> Execute(const QueryBlock& root,
                        NestedIterStats* stats = nullptr);
  Result<Table> ExecuteSql(const std::string& sql,
                           NestedIterStats* stats = nullptr);

 private:
  /// Per-block runtime state prepared once per Execute call.
  struct BlockRt {
    const QueryBlock* block = nullptr;
    Schema ctx_schema;    // concatenated schemas of the ancestor blocks
    Schema block_schema;  // this block's qualified schema
    Table filtered;       // T_i = sigma_i(R_i), for the scan path
    // Predicate over ctx ++ block rows: correlated (scan path) or
    // correlated AND local (index path, which reads unfiltered base rows).
    BoundPredicate residual;
    bool use_index = false;
    const Table* base_table = nullptr;  // index path
    const HashIndex* index = nullptr;   // equality probes
    const BTreeIndex* btree = nullptr;  // inequality probes (no equality
                                        // correlation available)
    CmpOp btree_op = CmpOp::kLt;        // block_value btree_op probe_value
    int probe_ctx_idx = -1;  // ctx column whose value probes the index
    // Linking predicate pieces.
    LinkingPredicate pred;
    int linking_ctx_idx = -1;  // in ctx schema; -1 for EXISTS forms
    int linked_idx = -1;       // in block schema; -1 for EXISTS forms
    std::vector<std::unique_ptr<BlockRt>> children;
  };

  Result<std::unique_ptr<BlockRt>> Prepare(const QueryBlock& block,
                                           const Schema& ctx_schema);

  /// Evaluates the child's linking predicate for one outer context row.
  Result<TriBool> EvalLink(const BlockRt& child, const Row& ctx,
                           NestedIterStats* stats);

  const Catalog& catalog_;
  NestedIterOptions options_;
};

}  // namespace nestra

#endif  // NESTRA_BASELINE_NESTED_ITERATION_H_
