#include "baseline/unnest_semijoin.h"

#include "exec/distinct.h"
#include "exec/project.h"
#include "nra/planner.h"
#include "nra/rewrites.h"

namespace nestra {

namespace {

// Finds the block owning the alias of a qualified attribute.
const QueryBlock* FindOwner(const QueryBlock& block, const std::string& attr) {
  const std::string alias = attr.substr(0, attr.find('.'));
  for (const QueryBlock::TableRef& t : block.tables) {
    if (t.alias == alias) return &block;
  }
  for (const auto& c : block.children) {
    const QueryBlock* found = FindOwner(*c, attr);
    if (found != nullptr) return found;
  }
  return nullptr;
}

}  // namespace

bool SemiAntiUnnester::IsAttrNotNull(const QueryBlock& root,
                                     const std::string& attr) const {
  const QueryBlock* owner = FindOwner(root, attr);
  if (owner == nullptr) return false;
  const std::string alias = attr.substr(0, attr.find('.'));
  for (const QueryBlock::TableRef& t : owner->tables) {
    if (t.alias == alias) {
      return catalog_.IsNotNull(t.table, UnqualifiedName(attr));
    }
  }
  return false;
}

std::string SemiAntiUnnester::CheckApplicable(const QueryBlock& root) const {
  if (root.children.empty()) return "";  // flat query: trivially fine
  if (!root.IsLinear()) {
    return "tree query: the semijoin/antijoin pipeline handles only linear "
           "nesting";
  }
  const Result<std::vector<const QueryBlock*>> chain = LinearChain(root);
  if (!chain.ok()) return chain.status().message();
  // Structural blockers first (they are what fundamentally rules the
  // pipeline out); constraint-dependent blockers second.
  for (size_t k = 1; k < chain->size(); ++k) {
    const QueryBlock& b = *(*chain)[k];
    const int parent_id = (*chain)[k - 1]->id;
    for (int ref : b.correlated_block_ids) {
      if (ref != parent_id) {
        return "block " + std::to_string(b.id) +
               " is correlated to non-adjacent block " + std::to_string(ref) +
               ": semijoin/antijoin keeps only one table's information";
      }
    }
  }
  for (size_t k = 1; k < chain->size(); ++k) {
    const QueryBlock& b = *(*chain)[k];
    if (b.is_aggregate_link) {
      return "scalar aggregate subqueries cannot be unnested with "
             "semijoin/antijoin";
    }
    if (b.link_op == LinkOp::kAll || b.link_op == LinkOp::kNotIn) {
      if (!IsAttrNotNull(root, b.linked_attr)) {
        return "antijoin for " + std::string(LinkOpToString(b.link_op)) +
               " requires a NOT NULL constraint on " + b.linked_attr;
      }
      const bool linking_not_null = b.linking_is_const
                                        ? !b.linking_const.is_null()
                                        : IsAttrNotNull(root, b.linking_attr);
      if (!linking_not_null) {
        return "antijoin for " + std::string(LinkOpToString(b.link_op)) +
               " requires a NOT NULL constraint on " + b.linking_attr;
      }
    }
  }
  return "";
}

Result<Table> SemiAntiUnnester::Execute(const QueryBlock& root) {
  const std::string why_not = CheckApplicable(root);
  if (!why_not.empty()) return Status::InvalidArgument(why_not);

  NESTRA_ASSIGN_OR_RETURN(std::vector<const QueryBlock*> chain,
                          LinearChain(root));
  const int n = static_cast<int>(chain.size());

  NESTRA_ASSIGN_OR_RETURN(Table cur, EvalBlockBase(*chain[n - 1], catalog_));
  for (int k = n - 2; k >= 0; --k) {
    const QueryBlock& child = *chain[k + 1];
    NESTRA_ASSIGN_OR_RETURN(Table left, EvalBlockBase(*chain[k], catalog_));

    JoinType join_type = JoinType::kLeftSemi;
    ExprPtr extra;
    switch (child.link_op) {
      case LinkOp::kExists:
      case LinkOp::kIn:
      case LinkOp::kSome: {
        join_type = JoinType::kLeftSemi;
        NESTRA_ASSIGN_OR_RETURN(extra, PositiveLinkJoinCondition(child));
        break;
      }
      case LinkOp::kNotExists:
        join_type = JoinType::kLeftAnti;
        break;
      case LinkOp::kNotIn:
        join_type = JoinType::kLeftAnti;
        extra = Cmp(CmpOp::kEq, child.LinkingExpr(), Col(child.linked_attr));
        break;
      case LinkOp::kAll:
        // A theta ALL S  ==  NOT (A anti-theta SOME S) under the NOT NULL
        // preconditions verified above.
        join_type = JoinType::kLeftAnti;
        extra = Cmp(NegateCmpOp(child.link_cmp), child.LinkingExpr(),
                    Col(child.linked_attr));
        break;
    }
    NESTRA_ASSIGN_OR_RETURN(cur,
                            JoinWithChild(std::move(left), std::move(cur),
                                          child, join_type, std::move(extra)));
  }

  return FinalizeRootOutput(root, std::move(cur));
}

}  // namespace nestra
