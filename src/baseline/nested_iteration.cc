#include "baseline/nested_iteration.h"

#include "storage/io_sim.h"

#include "exec/distinct.h"
#include "exec/project.h"
#include "nra/planner.h"
#include "plan/binder.h"

namespace nestra {

namespace {

// Finds an equality-correlated pair (ctx column, block column) usable as an
// index probe: block must be single-table and the block column must belong
// to it.
bool FindIndexProbe(const QueryBlock& block, const Schema& ctx_schema,
                    const Schema& block_schema, std::string* ctx_col,
                    std::string* block_col) {
  if (block.tables.size() != 1) return false;
  for (const ExprPtr& p : block.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() != CmpOp::kEq) continue;
    const auto* l = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* r = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    if (l == nullptr || r == nullptr) continue;
    const bool l_ctx = ctx_schema.Resolve(l->name()).ok();
    const bool r_blk = block_schema.Resolve(r->name()).ok();
    const bool r_ctx = ctx_schema.Resolve(r->name()).ok();
    const bool l_blk = block_schema.Resolve(l->name()).ok();
    if (l_ctx && !l_blk && r_blk && !r_ctx) {
      *ctx_col = l->name();
      *block_col = r->name();
      return true;
    }
    if (r_ctx && !r_blk && l_blk && !l_ctx) {
      *ctx_col = r->name();
      *block_col = l->name();
      return true;
    }
  }
  return false;
}

// Like FindIndexProbe but for range correlation: finds `block_col theta
// ctx_col` (either orientation) with theta an inequality usable by a
// B+-tree probe (kNe excluded: it selects nearly everything).
bool FindBTreeProbe(const QueryBlock& block, const Schema& ctx_schema,
                    const Schema& block_schema, std::string* ctx_col,
                    std::string* block_col, CmpOp* op) {
  if (block.tables.size() != 1) return false;
  for (const ExprPtr& p : block.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() == CmpOp::kEq || cmp->op() == CmpOp::kNe) {
      continue;
    }
    const auto* l = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* r = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    if (l == nullptr || r == nullptr) continue;
    const bool l_ctx = ctx_schema.Resolve(l->name()).ok();
    const bool r_blk = block_schema.Resolve(r->name()).ok();
    const bool r_ctx = ctx_schema.Resolve(r->name()).ok();
    const bool l_blk = block_schema.Resolve(l->name()).ok();
    if (l_blk && !l_ctx && r_ctx && !r_blk) {
      // block_col theta ctx_col: probe with theta as-is.
      *block_col = l->name();
      *ctx_col = r->name();
      *op = cmp->op();
      return true;
    }
    if (l_ctx && !l_blk && r_blk && !r_ctx) {
      // ctx_col theta block_col  ==  block_col flip(theta) ctx_col.
      *ctx_col = l->name();
      *block_col = r->name();
      *op = FlipCmpOp(cmp->op());
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::unique_ptr<NestedIterationExecutor::BlockRt>>
NestedIterationExecutor::Prepare(const QueryBlock& block,
                                 const Schema& ctx_schema) {
  auto rt = std::make_unique<BlockRt>();
  rt->block = &block;
  rt->ctx_schema = ctx_schema;
  for (const QueryBlock::TableRef& ref : block.tables) {
    NESTRA_ASSIGN_OR_RETURN(const Table* table, catalog_.GetTable(ref.table));
    rt->block_schema = Schema::Concat(rt->block_schema,
                                      table->schema().Qualify(ref.alias));
  }
  const Schema combined = Schema::Concat(ctx_schema, rt->block_schema);

  std::string ctx_col, block_col;
  CmpOp btree_op = CmpOp::kLt;
  const bool hash_probe =
      options_.use_indexes && !block.IsRoot() &&
      FindIndexProbe(block, ctx_schema, rt->block_schema, &ctx_col,
                     &block_col);
  const bool btree_probe =
      !hash_probe && options_.use_indexes && !block.IsRoot() &&
      FindBTreeProbe(block, ctx_schema, rt->block_schema, &ctx_col,
                     &block_col, &btree_op);
  if (hash_probe || btree_probe) {
    rt->use_index = true;
    NESTRA_ASSIGN_OR_RETURN(rt->base_table,
                            catalog_.GetTable(block.tables[0].table));
    if (hash_probe) {
      NESTRA_ASSIGN_OR_RETURN(
          rt->index, catalog_.GetHashIndex(block.tables[0].table,
                                           UnqualifiedName(block_col)));
    } else {
      NESTRA_ASSIGN_OR_RETURN(
          rt->btree, catalog_.GetBTreeIndex(block.tables[0].table,
                                            UnqualifiedName(block_col)));
      rt->btree_op = btree_op;
    }
    NESTRA_ASSIGN_OR_RETURN(rt->probe_ctx_idx, ctx_schema.Resolve(ctx_col));
    // Index path reads raw base rows: the residual must re-check the local
    // predicate as well as every correlated predicate.
    std::vector<ExprPtr> conjuncts;
    for (const ExprPtr& p : block.correlated_preds) {
      conjuncts.push_back(p->Clone());
    }
    if (block.local_pred != nullptr) conjuncts.push_back(block.local_pred->Clone());
    NESTRA_ASSIGN_OR_RETURN(
        rt->residual,
        BoundPredicate::MakeOwned(MakeAnd(std::move(conjuncts)), combined));
  } else {
    NESTRA_ASSIGN_OR_RETURN(rt->filtered, EvalBlockBase(block, catalog_));
    std::vector<ExprPtr> conjuncts;
    for (const ExprPtr& p : block.correlated_preds) {
      conjuncts.push_back(p->Clone());
    }
    NESTRA_ASSIGN_OR_RETURN(
        rt->residual,
        BoundPredicate::MakeOwned(MakeAnd(std::move(conjuncts)), combined));
  }

  if (!block.IsRoot()) {
    rt->pred = block.MakeLinkPredicate("");
    if ((rt->pred.kind == LinkingPredicate::Kind::kQuantified ||
         rt->pred.kind == LinkingPredicate::Kind::kAggregate) &&
        !rt->pred.linking_is_const) {
      NESTRA_ASSIGN_OR_RETURN(rt->linking_ctx_idx,
                              ctx_schema.Resolve(block.linking_attr));
    }
    if (rt->pred.kind == LinkingPredicate::Kind::kQuantified ||
        rt->pred.kind == LinkingPredicate::Kind::kAggregate) {
      if (!block.linked_attr.empty()) {  // empty for COUNT(*)
        NESTRA_ASSIGN_OR_RETURN(rt->linked_idx,
                                rt->block_schema.Resolve(block.linked_attr));
      }
    }
  }

  for (const auto& child : block.children) {
    NESTRA_ASSIGN_OR_RETURN(std::unique_ptr<BlockRt> c,
                            Prepare(*child, combined));
    rt->children.push_back(std::move(c));
  }
  return rt;
}

Result<TriBool> NestedIterationExecutor::EvalLink(const BlockRt& child,
                                                  const Row& ctx,
                                                  NestedIterStats* stats) {
  ++stats->subquery_evals;
  LinkingAccumulator acc(child.pred);
  acc.Reset(child.linking_ctx_idx >= 0 ? ctx[child.linking_ctx_idx]
                                       : child.pred.linking_const);

  const std::vector<Row>* scan_rows = nullptr;
  const std::vector<int64_t>* probe_ids = nullptr;
  std::vector<int64_t> btree_ids;
  if (child.use_index) {
    ++stats->index_probes;
    if (child.btree != nullptr) {
      btree_ids = child.btree->Lookup(child.btree_op,
                                      ctx[child.probe_ctx_idx]);
      probe_ids = &btree_ids;
    } else {
      probe_ids = &child.index->Lookup(ctx[child.probe_ctx_idx]);
    }
  } else {
    scan_rows = &child.filtered.rows();
  }
  const size_t n =
      child.use_index ? probe_ids->size() : scan_rows->size();

  for (size_t i = 0; i < n; ++i) {
    if (child.use_index) {
      if (IoSim* sim = IoSim::Get()) {
        sim->RandomRow(child.base_table, (*probe_ids)[i]);
      }
    }
    const Row& candidate = child.use_index
                               ? child.base_table->rows()[(*probe_ids)[i]]
                               : (*scan_rows)[i];
    ++stats->candidate_rows;
    const Row combined = Row::Concat(ctx, candidate);
    if (!child.residual.Matches(combined)) continue;
    // The candidate belongs to the subquery result only if its own
    // subqueries also accept it.
    bool qualifies = true;
    for (const auto& grandchild : child.children) {
      NESTRA_ASSIGN_OR_RETURN(TriBool sub, EvalLink(*grandchild, combined,
                                                    stats));
      if (!IsTrue(sub)) {
        qualifies = false;
        break;
      }
    }
    if (!qualifies) continue;
    acc.Add(Value::Bool(true),
            child.linked_idx >= 0 ? candidate[child.linked_idx]
                                  : Value::Null());
    if (acc.Decided()) break;
  }
  return acc.Result();
}

Result<Table> NestedIterationExecutor::Execute(const QueryBlock& root,
                                               NestedIterStats* stats) {
  NestedIterStats local;
  if (stats == nullptr) stats = &local;
  *stats = NestedIterStats();

  NESTRA_ASSIGN_OR_RETURN(std::unique_ptr<BlockRt> rt,
                          Prepare(root, Schema()));

  Table kept(rt->block_schema);
  for (const Row& row : rt->filtered.rows()) {
    ++stats->outer_tuples;
    bool qualifies = true;
    for (const auto& child : rt->children) {
      NESTRA_ASSIGN_OR_RETURN(TriBool t, EvalLink(*child, row, stats));
      if (!IsTrue(t)) {
        qualifies = false;
        break;
      }
    }
    if (qualifies) kept.AppendUnchecked(row);
  }

  return FinalizeRootOutput(root, std::move(kept));
}

Result<Table> NestedIterationExecutor::ExecuteSql(const std::string& sql,
                                                  NestedIterStats* stats) {
  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr root, ParseAndBind(sql, catalog_));
  return Execute(*root, stats);
}

}  // namespace nestra
