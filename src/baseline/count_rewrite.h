#ifndef NESTRA_BASELINE_COUNT_REWRITE_H_
#define NESTRA_BASELINE_COUNT_REWRITE_H_

#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief The classic Kim/Ganski-style aggregate rewrite for inequality-ALL
/// subqueries:
///
///   R.A > ALL (SELECT S.B FROM S WHERE S.G = R.D)
///     -->
///   R LOJ (SELECT G, MAX(B) AS m, COUNT(*) AS c FROM S GROUP BY G) ON G = D
///   WHERE c IS NULL OR A > m
///
/// (MIN for </<=). Deliberately reproduces the rewrite's documented
/// unsoundness in the presence of NULLs — the paper's Section 2 example:
/// with R.A = 5 and S.B = {2, 3, 4, null}, SQL's `5 > ALL {...}` is UNKNOWN
/// (row filtered out) but MAX ignores the NULL, compares 5 > 4, and keeps
/// the row. The divergence tests assert exactly this difference against the
/// oracle.
///
/// Applicability: one-level query, single leaf child, θ ALL link with
/// θ ∈ {<, <=, >, >=}, all correlated predicates equalities.
Result<Table> ExecuteAggRewrite(const QueryBlock& root,
                                const Catalog& catalog);

/// Empty when applicable, else the reason.
std::string AggRewriteApplicable(const QueryBlock& root);

}  // namespace nestra

#endif  // NESTRA_BASELINE_COUNT_REWRITE_H_
