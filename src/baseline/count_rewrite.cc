#include "baseline/count_rewrite.h"

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/project.h"
#include "nra/planner.h"

namespace nestra {

std::string AggRewriteApplicable(const QueryBlock& root) {
  if (root.children.size() != 1) {
    return "aggregate rewrite handles exactly one subquery";
  }
  const QueryBlock& child = *root.children[0];
  if (!child.IsLeaf()) return "subquery must be flat";
  if (child.link_op != LinkOp::kAll) {
    return "aggregate rewrite targets theta-ALL subqueries";
  }
  switch (child.link_cmp) {
    case CmpOp::kLt:
    case CmpOp::kLe:
    case CmpOp::kGt:
    case CmpOp::kGe:
      break;
    default:
      return "theta must be an inequality (<, <=, >, >=) for the MIN/MAX "
             "rewrite";
  }
  if (child.correlated_preds.empty()) {
    return "subquery must be equality-correlated";
  }
  return "";
}

Result<Table> ExecuteAggRewrite(const QueryBlock& root,
                                const Catalog& catalog) {
  const std::string why_not = AggRewriteApplicable(root);
  if (!why_not.empty()) return Status::InvalidArgument(why_not);
  const QueryBlock& child = *root.children[0];

  NESTRA_ASSIGN_OR_RETURN(Table outer, EvalBlockBase(root, catalog));
  NESTRA_ASSIGN_OR_RETURN(Table inner, EvalBlockBase(child, catalog));

  std::vector<std::string> okeys, ikeys;
  if (!AllEquiCorrelation(child, outer.schema(), inner.schema(), &okeys,
                          &ikeys)) {
    return Status::InvalidArgument(
        "aggregate rewrite requires pure equality correlation");
  }

  // Group the inner relation by the correlation key, computing the extreme
  // of the linked attribute. MAX for > / >=, MIN for < / <=. COUNT(*)
  // detects the empty-group case after the outer join.
  const AggFunc func = (child.link_cmp == CmpOp::kGt ||
                        child.link_cmp == CmpOp::kGe)
                           ? AggFunc::kMax
                           : AggFunc::kMin;
  std::vector<AggSpec> aggs;
  aggs.push_back({func, child.linked_attr, "agg_val"});
  aggs.push_back({AggFunc::kCountStar, "", "agg_cnt"});
  auto agg = std::make_unique<AggregateNode>(
      std::make_unique<TableSourceNode>(std::move(inner)), ikeys,
      std::move(aggs));

  std::vector<EquiPair> equi;
  for (size_t i = 0; i < okeys.size(); ++i) equi.push_back({okeys[i], ikeys[i]});
  ExecNodePtr node = std::make_unique<HashJoinNode>(
      std::make_unique<TableSourceNode>(std::move(outer)), std::move(agg),
      JoinType::kLeftOuter, std::move(equi), nullptr);

  // Qualify when the group was empty (no aggregate row joined) or the
  // comparison against the extreme holds. This is where the NULL bug lives:
  // MIN/MAX silently ignore NULL members.
  std::vector<ExprPtr> disjuncts;
  disjuncts.push_back(IsNull(Col("agg_cnt")));
  disjuncts.push_back(
      Cmp(child.link_cmp, Col(child.linking_attr), Col("agg_val")));
  node = std::make_unique<FilterNode>(std::move(node),
                                      MakeOr(std::move(disjuncts)));
  NESTRA_ASSIGN_OR_RETURN(Table filtered, CollectTable(node.get()));
  return FinalizeRootOutput(root, std::move(filtered));
}

}  // namespace nestra
