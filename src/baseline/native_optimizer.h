#ifndef NESTRA_BASELINE_NATIVE_OPTIMIZER_H_
#define NESTRA_BASELINE_NATIVE_OPTIMIZER_H_

#include <string>

#include "baseline/nested_iteration.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief Plan families the modelled commercial optimizer ("System A" in the
/// paper) chooses among for nested queries with non-aggregate subqueries.
enum class NativePlanKind {
  /// Bottom-up semijoin/antijoin pipeline — chosen for linear queries whose
  /// operators are positive or NOT EXISTS, and for ALL / NOT IN only under
  /// NOT NULL constraints (Figures 5 and 9, and the Query 1 footnote).
  kSemiAntiPipeline,
  /// Tuple-at-a-time nested iteration with index access — the fallback for
  /// general ALL / NOT IN, mixed operators, and non-adjacent correlation
  /// (Figures 4, 6, 7, 8).
  kNestedIteration,
};

struct NativePlanChoice {
  NativePlanKind kind = NativePlanKind::kNestedIteration;
  /// Why the unnested pipeline was or was not chosen (mirrors the paper's
  /// explanations of System A's behaviour).
  std::string explanation;
};

/// Decides the plan the way System A does.
NativePlanChoice ChooseNativePlan(const QueryBlock& root,
                                  const Catalog& catalog);

/// \brief Executes a query with the native strategy: semijoin/antijoin
/// pipeline when legal, nested iteration (with or without indexes per
/// `iter_options`) otherwise.
Result<Table> ExecuteNative(const QueryBlock& root, const Catalog& catalog,
                            NestedIterOptions iter_options = {},
                            NativePlanChoice* choice = nullptr,
                            NestedIterStats* iter_stats = nullptr);

/// Parse + bind + ExecuteNative.
Result<Table> ExecuteNativeSql(const std::string& sql, const Catalog& catalog,
                               NestedIterOptions iter_options = {},
                               NativePlanChoice* choice = nullptr,
                               NestedIterStats* iter_stats = nullptr);

}  // namespace nestra

#endif  // NESTRA_BASELINE_NATIVE_OPTIMIZER_H_
