#ifndef NESTRA_EXPR_EVALUATOR_H_
#define NESTRA_EXPR_EVALUATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"

namespace nestra {

/// \brief Analysis and planning helpers over expression trees.

/// Splits a predicate into its top-level AND conjuncts (a non-AND expression
/// yields a single conjunct). Consumes the input.
std::vector<ExprPtr> SplitConjunction(ExprPtr expr);

/// True if every column referenced by `expr` resolves in `schema`.
bool ReferencesOnly(const Expr& expr, const Schema& schema);

/// True if `expr` references at least one column that resolves in `schema`.
bool ReferencesAny(const Expr& expr, const Schema& schema);

/// \brief One `l = r` join-key pair pulled out of a join condition, with `l`
/// resolving on the left input and `r` on the right input.
struct EquiPair {
  std::string left;
  std::string right;
};

/// \brief Join condition decomposition: hashable equality pairs plus a
/// residual predicate (bound against the concatenated schema by the join).
struct JoinCondition {
  std::vector<EquiPair> equi;
  ExprPtr residual;  // nullptr when no residual

  bool HasResidual() const { return residual != nullptr; }
};

/// Decomposes `conjuncts` into equi pairs (Comparison kEq between a column of
/// `left` and a column of `right`, either orientation) and a residual with
/// everything else. Consumes the input.
JoinCondition DecomposeJoinCondition(std::vector<ExprPtr> conjuncts,
                                     const Schema& left, const Schema& right);

/// \brief A predicate cloned and bound against a fixed schema, ready for
/// repeated row evaluation. The expression may be null, meaning "TRUE".
class BoundPredicate {
 public:
  BoundPredicate() = default;

  /// Clones `expr` (if non-null) and binds it against `schema`.
  static Result<BoundPredicate> Make(const Expr* expr, const Schema& schema);

  /// Takes ownership of `expr` and binds it.
  static Result<BoundPredicate> MakeOwned(ExprPtr expr, const Schema& schema);

  TriBool EvalBool(const Row& row) const {
    return expr_ ? expr_->EvalBool(row) : TriBool::kTrue;
  }
  bool Matches(const Row& row) const { return IsTrue(EvalBool(row)); }
  bool always_true() const { return expr_ == nullptr; }

  std::string ToString() const { return expr_ ? expr_->ToString() : "TRUE"; }

 private:
  std::shared_ptr<const Expr> expr_;  // shared so BoundPredicate is copyable
};

}  // namespace nestra

#endif  // NESTRA_EXPR_EVALUATOR_H_
