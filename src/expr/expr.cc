#include "expr/expr.h"

#include <sstream>

namespace nestra {

TriBool Expr::EvalBool(const Row& row) const {
  const Value v = Eval(row);
  if (v.is_null()) return TriBool::kUnknown;
  if (v.is_int()) return MakeTriBool(v.int64() != 0);
  if (v.is_float()) return MakeTriBool(v.float64() != 0.0);
  return MakeTriBool(!v.string().empty());
}

Status ColumnRef::Bind(const Schema& schema) {
  NESTRA_ASSIGN_OR_RETURN(index_, schema.Resolve(name_));
  return Status::OK();
}

const char* ArithOpToString(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "/";
  }
  return "?";
}

Value Arithmetic::Eval(const Row& row) const {
  const Value l = lhs_->Eval(row);
  const Value r = rhs_->Eval(row);
  const std::optional<double> lv = l.AsDouble();
  const std::optional<double> rv = r.AsDouble();
  if (!lv.has_value() || !rv.has_value()) return Value::Null();
  if (op_ == ArithOp::kDiv) {
    if (*rv == 0.0) return Value::Null();  // SQL would error; we null
    return Value::Float64(*lv / *rv);
  }
  double result = 0;
  switch (op_) {
    case ArithOp::kAdd:
      result = *lv + *rv;
      break;
    case ArithOp::kSub:
      result = *lv - *rv;
      break;
    case ArithOp::kMul:
      result = *lv * *rv;
      break;
    case ArithOp::kDiv:
      break;  // handled above
  }
  if (l.is_int() && r.is_int()) {
    return Value::Int64(static_cast<int64_t>(result));
  }
  return Value::Float64(result);
}

std::string Arithmetic::ToString() const {
  return "(" + lhs_->ToString() + " " + ArithOpToString(op_) + " " +
         rhs_->ToString() + ")";
}

Status Comparison::Bind(const Schema& schema) {
  NESTRA_RETURN_NOT_OK(lhs_->Bind(schema));
  NESTRA_RETURN_NOT_OK(rhs_->Bind(schema));
  return Status::OK();
}

Value Comparison::Eval(const Row& row) const {
  const TriBool t = EvalBool(row);
  if (IsUnknown(t)) return Value::Null();
  return Value::Bool(IsTrue(t));
}

std::string Comparison::ToString() const {
  std::ostringstream oss;
  oss << lhs_->ToString() << " " << CmpOpToString(op_) << " "
      << rhs_->ToString();
  return oss.str();
}

Status AndExpr::Bind(const Schema& schema) {
  for (const ExprPtr& c : children_) NESTRA_RETURN_NOT_OK(c->Bind(schema));
  return Status::OK();
}

Value AndExpr::Eval(const Row& row) const {
  const TriBool t = EvalBool(row);
  if (IsUnknown(t)) return Value::Null();
  return Value::Bool(IsTrue(t));
}

TriBool AndExpr::EvalBool(const Row& row) const {
  TriBool acc = TriBool::kTrue;
  for (const ExprPtr& c : children_) {
    acc = And(acc, c->EvalBool(row));
    if (IsFalse(acc)) return acc;  // short-circuit on definite falsity
  }
  return acc;
}

void AndExpr::CollectColumns(std::vector<std::string>* out) const {
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

std::string AndExpr::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) oss << " AND ";
    oss << "(" << children_[i]->ToString() << ")";
  }
  return oss.str();
}

std::unique_ptr<Expr> AndExpr::Clone() const {
  std::vector<ExprPtr> copies;
  copies.reserve(children_.size());
  for (const ExprPtr& c : children_) copies.push_back(c->Clone());
  return std::make_unique<AndExpr>(std::move(copies));
}

Status OrExpr::Bind(const Schema& schema) {
  for (const ExprPtr& c : children_) NESTRA_RETURN_NOT_OK(c->Bind(schema));
  return Status::OK();
}

Value OrExpr::Eval(const Row& row) const {
  const TriBool t = EvalBool(row);
  if (IsUnknown(t)) return Value::Null();
  return Value::Bool(IsTrue(t));
}

TriBool OrExpr::EvalBool(const Row& row) const {
  TriBool acc = TriBool::kFalse;
  for (const ExprPtr& c : children_) {
    acc = Or(acc, c->EvalBool(row));
    if (IsTrue(acc)) return acc;
  }
  return acc;
}

void OrExpr::CollectColumns(std::vector<std::string>* out) const {
  for (const ExprPtr& c : children_) c->CollectColumns(out);
}

std::string OrExpr::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (i > 0) oss << " OR ";
    oss << "(" << children_[i]->ToString() << ")";
  }
  return oss.str();
}

std::unique_ptr<Expr> OrExpr::Clone() const {
  std::vector<ExprPtr> copies;
  copies.reserve(children_.size());
  for (const ExprPtr& c : children_) copies.push_back(c->Clone());
  return std::make_unique<OrExpr>(std::move(copies));
}

Value NotExpr::Eval(const Row& row) const {
  const TriBool t = EvalBool(row);
  if (IsUnknown(t)) return Value::Null();
  return Value::Bool(IsTrue(t));
}

ExprPtr Col(std::string name) {
  return std::make_unique<ColumnRef>(std::move(name));
}
ExprPtr Lit(Value v) { return std::make_unique<Literal>(std::move(v)); }
ExprPtr LitInt(int64_t v) { return Lit(Value::Int64(v)); }
ExprPtr LitFloat(double v) { return Lit(Value::Float64(v)); }
ExprPtr LitString(std::string v) { return Lit(Value::String(std::move(v))); }
ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<Comparison>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  return std::make_unique<Arithmetic>(op, std::move(lhs), std::move(rhs));
}
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs) {
  return Cmp(CmpOp::kEq, std::move(lhs), std::move(rhs));
}

ExprPtr MakeAnd(std::vector<ExprPtr> children) {
  if (children.empty()) return Lit(Value::Bool(true));
  if (children.size() == 1) return std::move(children[0]);
  // Flatten nested ANDs for readability and SplitConjunction round-trips.
  std::vector<ExprPtr> flat;
  for (ExprPtr& c : children) {
    if (auto* a = dynamic_cast<AndExpr*>(c.get())) {
      for (ExprPtr& g : a->TakeChildren()) flat.push_back(std::move(g));
    } else {
      flat.push_back(std::move(c));
    }
  }
  return std::make_unique<AndExpr>(std::move(flat));
}

ExprPtr MakeOr(std::vector<ExprPtr> children) {
  if (children.empty()) return Lit(Value::Bool(false));
  if (children.size() == 1) return std::move(children[0]);
  return std::make_unique<OrExpr>(std::move(children));
}

ExprPtr MakeNot(ExprPtr child) {
  return std::make_unique<NotExpr>(std::move(child));
}
ExprPtr IsNull(ExprPtr child) {
  return std::make_unique<IsNullExpr>(std::move(child), /*negated=*/false);
}
ExprPtr IsNotNull(ExprPtr child) {
  return std::make_unique<IsNullExpr>(std::move(child), /*negated=*/true);
}

}  // namespace nestra
