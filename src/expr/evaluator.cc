#include "expr/evaluator.h"

namespace nestra {

std::vector<ExprPtr> SplitConjunction(ExprPtr expr) {
  std::vector<ExprPtr> out;
  if (auto* a = dynamic_cast<AndExpr*>(expr.get())) {
    for (ExprPtr& c : a->TakeChildren()) {
      // Children may themselves be ANDs if built without MakeAnd.
      std::vector<ExprPtr> sub = SplitConjunction(std::move(c));
      for (ExprPtr& s : sub) out.push_back(std::move(s));
    }
  } else {
    out.push_back(std::move(expr));
  }
  return out;
}

bool ReferencesOnly(const Expr& expr, const Schema& schema) {
  std::vector<std::string> cols;
  expr.CollectColumns(&cols);
  for (const std::string& c : cols) {
    if (!schema.Resolve(c).ok()) return false;
  }
  return true;
}

bool ReferencesAny(const Expr& expr, const Schema& schema) {
  std::vector<std::string> cols;
  expr.CollectColumns(&cols);
  for (const std::string& c : cols) {
    if (schema.Resolve(c).ok()) return true;
  }
  return false;
}

JoinCondition DecomposeJoinCondition(std::vector<ExprPtr> conjuncts,
                                     const Schema& left,
                                     const Schema& right) {
  JoinCondition out;
  std::vector<ExprPtr> residuals;
  for (ExprPtr& c : conjuncts) {
    const auto* cmp = dynamic_cast<const Comparison*>(c.get());
    if (cmp != nullptr && cmp->op() == CmpOp::kEq) {
      const auto* l = dynamic_cast<const ColumnRef*>(&cmp->lhs());
      const auto* r = dynamic_cast<const ColumnRef*>(&cmp->rhs());
      if (l != nullptr && r != nullptr) {
        const bool l_left = left.Resolve(l->name()).ok();
        const bool l_right = right.Resolve(l->name()).ok();
        const bool r_left = left.Resolve(r->name()).ok();
        const bool r_right = right.Resolve(r->name()).ok();
        // Require an unambiguous side assignment.
        if (l_left && !l_right && r_right && !r_left) {
          out.equi.push_back({l->name(), r->name()});
          continue;
        }
        if (l_right && !l_left && r_left && !r_right) {
          out.equi.push_back({r->name(), l->name()});
          continue;
        }
      }
    }
    residuals.push_back(std::move(c));
  }
  if (!residuals.empty()) out.residual = MakeAnd(std::move(residuals));
  return out;
}

Result<BoundPredicate> BoundPredicate::Make(const Expr* expr,
                                            const Schema& schema) {
  if (expr == nullptr) return BoundPredicate();
  return MakeOwned(expr->Clone(), schema);
}

Result<BoundPredicate> BoundPredicate::MakeOwned(ExprPtr expr,
                                                 const Schema& schema) {
  BoundPredicate out;
  if (expr == nullptr) return out;
  NESTRA_RETURN_NOT_OK(expr->Bind(schema));
  out.expr_ = std::shared_ptr<const Expr>(std::move(expr));
  return out;
}

}  // namespace nestra
