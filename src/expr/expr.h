#ifndef NESTRA_EXPR_EXPR_H_
#define NESTRA_EXPR_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/tribool.h"
#include "common/value.h"

namespace nestra {

/// \brief Scalar / predicate expression tree.
///
/// Lifecycle: build the tree (names only), `Bind` it against the schema of
/// the rows it will see (resolving column names to indices and checking
/// types), then evaluate row-at-a-time. Evaluation after a successful Bind is
/// infallible; all errors are reported at bind time.
///
/// Predicates use SQL three-valued logic: `EvalBool` returns a TriBool and a
/// filter keeps a row only when the result is kTrue.
class Expr {
 public:
  virtual ~Expr() = default;

  /// Resolves column references against `schema` and type-checks.
  virtual Status Bind(const Schema& schema) = 0;

  /// Scalar evaluation. For predicate nodes this returns Value::Bool /
  /// Value::Null mirroring EvalBool.
  virtual Value Eval(const Row& row) const = 0;

  /// Predicate evaluation under three-valued logic. For scalar nodes:
  /// NULL -> kUnknown, zero/empty -> kFalse, else kTrue (SQL-ish truthiness;
  /// the binder never produces bare scalars in predicate position).
  virtual TriBool EvalBool(const Row& row) const;

  /// Collects all column names referenced by this subtree.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;

  virtual std::string ToString() const = 0;

  /// Deep copy (unbound; re-Bind before use).
  virtual std::unique_ptr<Expr> Clone() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

/// \brief Reference to a column by (possibly qualified) name.
class ColumnRef final : public Expr {
 public:
  explicit ColumnRef(std::string name) : name_(std::move(name)) {}

  Status Bind(const Schema& schema) override;
  Value Eval(const Row& row) const override { return row[index_]; }
  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(name_);
  }
  std::string ToString() const override { return name_; }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<ColumnRef>(name_);
  }

  const std::string& name() const { return name_; }
  /// Valid after Bind.
  int index() const { return index_; }

 private:
  std::string name_;
  int index_ = -1;
};

/// \brief A constant.
class Literal final : public Expr {
 public:
  explicit Literal(Value value) : value_(std::move(value)) {}

  Status Bind(const Schema&) override { return Status::OK(); }
  Value Eval(const Row&) const override { return value_; }
  void CollectColumns(std::vector<std::string>*) const override {}
  std::string ToString() const override { return value_.ToString(); }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<Literal>(value_);
  }

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// \brief A prepared-statement parameter `$n`.
///
/// Holds a pointer to the slot vector owned by the PreparedStatement; Eval
/// reads the current slot value, so re-executing a prepared plan only stores
/// new values into the slots — no re-parse, re-bind, or re-verify. Clone
/// shares the slots (plans clone predicates per execution, and every clone
/// must see the values bound for that execution). A missing slot evaluates
/// to NULL, matching an unbound parameter.
///
/// Analyzers that pattern-match expression shapes (plan verifier, property
/// analyzer, vectorized predicate compiler) see ParamExpr as an opaque
/// scalar and degrade to conservative three-valued row-wise evaluation —
/// parameters never unlock constant-based fast paths.
class ParamExpr final : public Expr {
 public:
  ParamExpr(int index, std::shared_ptr<const std::vector<Value>> slots)
      : index_(index), slots_(std::move(slots)) {}

  Status Bind(const Schema&) override { return Status::OK(); }
  Value Eval(const Row&) const override {
    if (index_ < 0 || static_cast<size_t>(index_) >= slots_->size()) {
      return Value::Null();
    }
    return (*slots_)[index_];
  }
  void CollectColumns(std::vector<std::string>*) const override {}
  std::string ToString() const override {
    return "$" + std::to_string(index_ + 1);
  }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<ParamExpr>(index_, slots_);
  }

  /// 0-based slot index ($1 -> 0).
  int index() const { return index_; }

 private:
  int index_;
  std::shared_ptr<const std::vector<Value>> slots_;
};

/// \brief Binary arithmetic under SQL semantics: a NULL (or non-numeric)
/// operand yields NULL, int ∘ int stays int64 for + - *, division always
/// produces float64, and division by zero yields NULL.
enum class ArithOp { kAdd, kSub, kMul, kDiv };

const char* ArithOpToString(ArithOp op);

class Arithmetic final : public Expr {
 public:
  Arithmetic(ArithOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema) override {
    NESTRA_RETURN_NOT_OK(lhs_->Bind(schema));
    return rhs_->Bind(schema);
  }
  Value Eval(const Row& row) const override;
  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  std::string ToString() const override;
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<Arithmetic>(op_, lhs_->Clone(), rhs_->Clone());
  }

 private:
  ArithOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// \brief lhs theta rhs with theta in {=, <>, <, <=, >, >=}; NULL on either
/// side yields Unknown.
class Comparison final : public Expr {
 public:
  Comparison(CmpOp op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  Status Bind(const Schema& schema) override;
  Value Eval(const Row& row) const override;
  TriBool EvalBool(const Row& row) const override {
    return Value::Apply(op_, lhs_->Eval(row), rhs_->Eval(row));
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    lhs_->CollectColumns(out);
    rhs_->CollectColumns(out);
  }
  std::string ToString() const override;
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<Comparison>(op_, lhs_->Clone(), rhs_->Clone());
  }

  CmpOp op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  CmpOp op_;
  ExprPtr lhs_;
  ExprPtr rhs_;
};

/// \brief N-ary Kleene conjunction.
class AndExpr final : public Expr {
 public:
  explicit AndExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override;
  Value Eval(const Row& row) const override;
  TriBool EvalBool(const Row& row) const override;
  void CollectColumns(std::vector<std::string>* out) const override;
  std::string ToString() const override;
  std::unique_ptr<Expr> Clone() const override;

  const std::vector<ExprPtr>& children() const { return children_; }
  std::vector<ExprPtr> TakeChildren() { return std::move(children_); }

 private:
  std::vector<ExprPtr> children_;
};

/// \brief N-ary Kleene disjunction.
class OrExpr final : public Expr {
 public:
  explicit OrExpr(std::vector<ExprPtr> children)
      : children_(std::move(children)) {}

  Status Bind(const Schema& schema) override;
  Value Eval(const Row& row) const override;
  TriBool EvalBool(const Row& row) const override;
  void CollectColumns(std::vector<std::string>* out) const override;
  std::string ToString() const override;
  std::unique_ptr<Expr> Clone() const override;

  const std::vector<ExprPtr>& children() const { return children_; }

 private:
  std::vector<ExprPtr> children_;
};

/// \brief Kleene negation.
class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr child) : child_(std::move(child)) {}

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  Value Eval(const Row& row) const override;
  TriBool EvalBool(const Row& row) const override {
    return Not(child_->EvalBool(row));
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }
  std::string ToString() const override {
    return "NOT (" + child_->ToString() + ")";
  }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<NotExpr>(child_->Clone());
  }

 private:
  ExprPtr child_;
};

/// \brief `x IS NULL` / `x IS NOT NULL` — two-valued, never Unknown.
class IsNullExpr final : public Expr {
 public:
  IsNullExpr(ExprPtr child, bool negated)
      : child_(std::move(child)), negated_(negated) {}

  Status Bind(const Schema& schema) override { return child_->Bind(schema); }
  Value Eval(const Row& row) const override {
    return Value::Bool(IsTrue(EvalBool(row)));
  }
  TriBool EvalBool(const Row& row) const override {
    const bool isnull = child_->Eval(row).is_null();
    return MakeTriBool(negated_ ? !isnull : isnull);
  }
  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }
  std::string ToString() const override {
    return child_->ToString() + (negated_ ? " IS NOT NULL" : " IS NULL");
  }
  std::unique_ptr<Expr> Clone() const override {
    return std::make_unique<IsNullExpr>(child_->Clone(), negated_);
  }

  bool negated() const { return negated_; }
  const Expr& child() const { return *child_; }

 private:
  ExprPtr child_;
  bool negated_;
};

// Convenience constructors.
ExprPtr Col(std::string name);
ExprPtr Lit(Value v);
ExprPtr LitInt(int64_t v);
ExprPtr LitFloat(double v);
ExprPtr LitString(std::string v);
ExprPtr Cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr Eq(ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeAnd(std::vector<ExprPtr> children);  // flattens; empty -> TRUE
ExprPtr MakeOr(std::vector<ExprPtr> children);
ExprPtr MakeNot(ExprPtr child);
ExprPtr IsNull(ExprPtr child);
ExprPtr IsNotNull(ExprPtr child);

}  // namespace nestra

#endif  // NESTRA_EXPR_EXPR_H_
