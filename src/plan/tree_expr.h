#ifndef NESTRA_PLAN_TREE_EXPR_H_
#define NESTRA_PLAN_TREE_EXPR_H_

#include <string>
#include <vector>

#include "plan/query_block.h"

namespace nestra {

/// \brief One edge of the tree expression (Section 4, step 2). Tree edges
/// run parent -> child and carry the linking predicate plus any correlated
/// predicates; `extra` edges are the additional correlation edges added when
/// a block is correlated to a non-adjacent ancestor and some edge on the
/// path is unlabeled (in which case the structure is a graph and evaluation
/// uses its maximal spanning query tree).
struct TreeExprEdge {
  int from_id = 0;
  int to_id = 0;
  std::string linking_label;  // empty for extra edges
  std::vector<std::string> correlated_labels;
  bool extra = false;
};

/// \brief The paper's tree expression for a bound query: one node per query
/// block (labeled T_i in DFS left-to-right order), edges as above. Used for
/// plan explanation and for the tree-structure tests; the executor consults
/// the QueryBlock tree directly.
class TreeExpression {
 public:
  static TreeExpression Build(const QueryBlock& root);

  /// Blocks in DFS pre-order; nodes()[i] is the paper's T_{i+1}.
  const std::vector<const QueryBlock*>& nodes() const { return nodes_; }
  const std::vector<TreeExprEdge>& edges() const { return edges_; }

  /// True when an `extra` correlation edge exists (structure is a graph and
  /// evaluation uses the maximal spanning query tree).
  bool IsGraph() const;

  /// Human-readable rendering mirroring Figure 3(a).
  std::string ToString() const;

  /// Graphviz DOT rendering (tree edges solid, extra correlation edges
  /// dashed), for documentation and debugging:
  ///   dot -Tpng <(my_explain_tool) -o tree.png
  std::string ToDot() const;

 private:
  std::vector<const QueryBlock*> nodes_;
  std::vector<TreeExprEdge> edges_;
};

/// Renders a linking predicate label like "R.B <> ALL {S.E}" for block
/// `child` (which carries the linking information toward its parent).
std::string LinkingLabel(const QueryBlock& child);

}  // namespace nestra

#endif  // NESTRA_PLAN_TREE_EXPR_H_
