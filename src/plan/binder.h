#ifndef NESTRA_PLAN_BINDER_H_
#define NESTRA_PLAN_BINDER_H_

#include "plan/query_block.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief Binds a parsed SELECT against the catalog, producing the
/// QueryBlock tree consumed by the nested relational planner and the
/// baselines.
///
/// Binding performs:
///  * table/alias resolution (aliases must be unique across all blocks);
///  * column resolution with SQL scoping (innermost block first, then
///    enclosing blocks outward), rewriting every reference to its fully
///    qualified "alias.column" form;
///  * classification of WHERE conjuncts into local predicates σ_i and
///    correlated predicates C_ij;
///  * extraction of linking predicates — subquery predicates must appear as
///    top-level conjuncts (not under OR or NOT), the standard restriction
///    for unnesting, satisfied by every query in the paper;
///  * date literal coercion: a string literal compared against a date
///    column becomes a date;
///  * block key attribution: each block's first table must have a primary
///    key registered in the catalog (the paper's "unique non-null
///    attribute" assumption).
Result<QueryBlockPtr> BindQuery(const AstSelect& ast, const Catalog& catalog);

/// Convenience: parse + bind.
Result<QueryBlockPtr> ParseAndBind(const std::string& sql,
                                   const Catalog& catalog);

}  // namespace nestra

#endif  // NESTRA_PLAN_BINDER_H_
