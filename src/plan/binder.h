#ifndef NESTRA_PLAN_BINDER_H_
#define NESTRA_PLAN_BINDER_H_

#include <memory>
#include <set>
#include <vector>

#include "plan/query_block.h"
#include "sql/ast.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief Parameter-binding context for PREPAREd statements.
///
/// Pass a ParamBinding to BindQuery to allow `$n` placeholders: every
/// ParamExpr the binder creates shares `slots`, so the prepared statement
/// stores per-execution values there and the bound tree (including its
/// per-execution predicate clones) reads them without re-binding. After a
/// successful bind, `slots` is resized to `count` NULLs.
struct ParamBinding {
  std::shared_ptr<std::vector<Value>> slots =
      std::make_shared<std::vector<Value>>();
  /// Highest $n seen (parameters are 1-based; gaps are allowed and the
  /// unreferenced slots simply stay unread).
  int count = 0;
  /// 0-based slot indices compared against a DATE column somewhere in the
  /// statement. String literals get date-coerced at bind time; parameter
  /// values are unknown until EXECUTE, so the session layer uses this set to
  /// coerce string arguments to dates at execution time instead.
  std::set<int> date_params;
};

/// \brief Binds a parsed SELECT against the catalog, producing the
/// QueryBlock tree consumed by the nested relational planner and the
/// baselines.
///
/// Binding performs:
///  * table/alias resolution (aliases must be unique across all blocks);
///  * column resolution with SQL scoping (innermost block first, then
///    enclosing blocks outward), rewriting every reference to its fully
///    qualified "alias.column" form;
///  * classification of WHERE conjuncts into local predicates σ_i and
///    correlated predicates C_ij;
///  * extraction of linking predicates — subquery predicates must appear as
///    top-level conjuncts (not under OR or NOT), the standard restriction
///    for unnesting, satisfied by every query in the paper;
///  * date literal coercion: a string literal compared against a date
///    column becomes a date;
///  * block key attribution: each block's first table must have a primary
///    key registered in the catalog (the paper's "unique non-null
///    attribute" assumption).
/// When `params` is null (the default), `$n` placeholders are a bind error —
/// parameters only make sense under PREPARE.
Result<QueryBlockPtr> BindQuery(const AstSelect& ast, const Catalog& catalog,
                                ParamBinding* params = nullptr);

/// Convenience: parse + bind.
Result<QueryBlockPtr> ParseAndBind(const std::string& sql,
                                   const Catalog& catalog);

}  // namespace nestra

#endif  // NESTRA_PLAN_BINDER_H_
