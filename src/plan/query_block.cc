#include "plan/query_block.h"

#include <sstream>

namespace nestra {

int QueryBlock::NumBlocks() const {
  int n = 1;
  for (const auto& c : children) n += c->NumBlocks();
  return n;
}

int QueryBlock::NestingDepth() const {
  int max_child = -1;
  for (const auto& c : children) {
    max_child = std::max(max_child, c->NestingDepth());
  }
  return max_child + 1;
}

bool QueryBlock::AllLinksPositive() const {
  for (const auto& c : children) {
    if (!c->LinkIsPositive()) return false;
    if (!c->AllLinksPositive()) return false;
  }
  return true;
}

LinkingPredicate QueryBlock::MakeLinkPredicate(
    const std::string& group_name) const {
  LinkingPredicate p =
      is_aggregate_link
          ? MakeAggregateLinkingPredicate(agg, link_cmp, linking_attr,
                                          group_name, linked_attr, key_attr)
          : MakeLinkingPredicate(link_op, link_cmp, linking_attr, group_name,
                                 linked_attr, key_attr);
  p.linking_is_const = linking_is_const;
  p.linking_const = linking_const;
  return p;
}

bool QueryBlock::IsLinear() const {
  if (children.size() > 1) return false;
  for (const auto& c : children) {
    if (!c->IsLinear()) return false;
  }
  return true;
}

bool QueryBlock::IsLinearCorrelated() const {
  if (!IsLinear()) return false;
  // Every non-root block must be correlated only to its parent.
  const QueryBlock* parent = this;
  const QueryBlock* node = children.empty() ? nullptr : children[0].get();
  while (node != nullptr) {
    for (int ref : node->correlated_block_ids) {
      if (ref != parent->id) return false;
    }
    parent = node;
    node = node->children.empty() ? nullptr : node->children[0].get();
  }
  return true;
}

std::string QueryBlock::ToString(int indent) const {
  std::ostringstream oss;
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  oss << pad << "Block " << id << ": FROM";
  for (const TableRef& t : tables) {
    oss << " " << t.table;
    if (t.alias != t.table) oss << " AS " << t.alias;
  }
  oss << "\n";
  if (IsRoot()) {
    oss << pad << "  select:";
    for (const std::string& s : select_list) oss << " " << s;
    if (distinct) oss << " (distinct)";
    oss << "\n";
  } else {
    oss << pad << "  link: " << linking_attr << " "
        << (link_op == LinkOp::kSome || link_op == LinkOp::kAll
                ? std::string(CmpOpToString(link_cmp)) + " "
                : std::string())
        << LinkOpToString(link_op) << " (" << linked_attr << ")\n";
  }
  if (local_pred != nullptr) {
    oss << pad << "  local: " << local_pred->ToString() << "\n";
  }
  for (const ExprPtr& c : correlated_preds) {
    oss << pad << "  correlated: " << c->ToString() << "\n";
  }
  oss << pad << "  key: " << key_attr << "\n";
  for (const auto& c : children) oss << c->ToString(indent + 1);
  return oss.str();
}

}  // namespace nestra
