#include "plan/tree_expr.h"

#include <map>
#include <sstream>

namespace nestra {

std::string LinkingLabel(const QueryBlock& child) {
  std::ostringstream oss;
  const std::string outer = child.linking_is_const
                                ? child.linking_const.ToString()
                                : child.linking_attr;
  if (child.is_aggregate_link) {
    oss << outer << " " << CmpOpToString(child.link_cmp) << " "
        << LinkAggToString(child.agg) << "{" << child.linked_attr << "}";
    return oss.str();
  }
  switch (child.link_op) {
    case LinkOp::kExists:
      oss << "EXISTS {" << child.linked_attr << "}";
      break;
    case LinkOp::kNotExists:
      oss << "NOT EXISTS {" << child.linked_attr << "}";
      break;
    case LinkOp::kIn:
      oss << child.linking_attr << " = SOME {" << child.linked_attr << "}";
      break;
    case LinkOp::kNotIn:
      oss << child.linking_attr << " <> ALL {" << child.linked_attr << "}";
      break;
    case LinkOp::kSome:
      oss << outer << " " << CmpOpToString(child.link_cmp)
          << " SOME {" << child.linked_attr << "}";
      break;
    case LinkOp::kAll:
      oss << outer << " " << CmpOpToString(child.link_cmp)
          << " ALL {" << child.linked_attr << "}";
      break;
  }
  return oss.str();
}

namespace {

void CollectDfs(const QueryBlock& block,
                std::vector<const QueryBlock*>* nodes,
                std::map<int, const QueryBlock*>* parent_of) {
  nodes->push_back(&block);
  for (const auto& c : block.children) {
    (*parent_of)[c->id] = &block;
    CollectDfs(*c, nodes, parent_of);
  }
}

}  // namespace

TreeExpression TreeExpression::Build(const QueryBlock& root) {
  TreeExpression out;
  std::map<int, const QueryBlock*> parent_of;
  CollectDfs(root, &out.nodes_, &parent_of);

  // Tree edges with linking labels, DFS order.
  std::map<std::pair<int, int>, size_t> edge_index;
  for (const QueryBlock* node : out.nodes_) {
    const auto pit = parent_of.find(node->id);
    if (pit == parent_of.end()) continue;  // root
    TreeExprEdge e;
    e.from_id = pit->second->id;
    e.to_id = node->id;
    e.linking_label = LinkingLabel(*node);
    edge_index[{e.from_id, e.to_id}] = out.edges_.size();
    out.edges_.push_back(std::move(e));
  }

  // Correlated predicate placement (Section 4, step 2).
  for (const QueryBlock* node : out.nodes_) {
    const auto pit = parent_of.find(node->id);
    if (pit == parent_of.end()) continue;
    const int parent_id = pit->second->id;
    for (size_t k = 0; k < node->correlated_preds.size(); ++k) {
      const std::string label = node->correlated_preds[k]->ToString();
      // Which ancestor(s) does this conjunct reference? The binder stores
      // the union per block; re-derive per-conjunct by checking which
      // ancestor attribute prefixes appear.
      // Adjacent (parent) correlation goes on the tree edge directly.
      bool references_non_parent = false;
      {
        std::vector<std::string> cols;
        node->correlated_preds[k]->CollectColumns(&cols);
        for (const std::string& c : cols) {
          // A column of an ancestor other than the parent?
          bool in_self = false, in_parent = false;
          for (const std::string& a : node->attributes) {
            in_self = in_self || a == c;
          }
          for (const std::string& a : pit->second->attributes) {
            in_parent = in_parent || a == c;
          }
          if (!in_self && !in_parent) references_non_parent = true;
        }
      }
      if (!references_non_parent) {
        out.edges_[edge_index[{parent_id, node->id}]]
            .correlated_labels.push_back(label);
        continue;
      }
      // Non-adjacent correlation: find the outermost referenced ancestor j;
      // if every tree edge from j down to this node already carries a
      // correlated predicate, fold the label into the (parent, node) edge;
      // otherwise add an extra edge j -> node.
      const QueryBlock* j = nullptr;
      {
        std::vector<std::string> cols;
        node->correlated_preds[k]->CollectColumns(&cols);
        // Walk ancestors outward; the outermost one owning a referenced
        // column is j.
        const QueryBlock* anc = pit->second;
        while (anc != nullptr) {
          for (const std::string& c : cols) {
            for (const std::string& a : anc->attributes) {
              if (a == c) j = anc;
            }
          }
          const auto ait = parent_of.find(anc->id);
          anc = ait == parent_of.end() ? nullptr : ait->second;
        }
      }
      if (j == nullptr) j = pit->second;
      bool all_labeled = true;
      {
        const QueryBlock* walk = node;
        while (walk->id != j->id) {
          const QueryBlock* p = parent_of.at(walk->id);
          const auto eit = edge_index.find({p->id, walk->id});
          if (eit != edge_index.end() &&
              out.edges_[eit->second].correlated_labels.empty() &&
              // The label we are about to place may complete this edge.
              !(p->id == parent_id && walk->id == node->id)) {
            all_labeled = false;
          }
          walk = p;
        }
      }
      if (all_labeled) {
        out.edges_[edge_index[{parent_id, node->id}]]
            .correlated_labels.push_back(label);
      } else {
        TreeExprEdge e;
        e.from_id = j->id;
        e.to_id = node->id;
        e.extra = true;
        e.correlated_labels.push_back(label);
        out.edges_.push_back(std::move(e));
      }
    }
  }
  return out;
}

bool TreeExpression::IsGraph() const {
  for (const TreeExprEdge& e : edges_) {
    if (e.extra) return true;
  }
  return false;
}

std::string TreeExpression::ToString() const {
  std::ostringstream oss;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    oss << "T" << nodes_[i]->id << ": ";
    for (size_t t = 0; t < nodes_[i]->tables.size(); ++t) {
      if (t > 0) oss << ", ";
      oss << nodes_[i]->tables[t].alias;
    }
    oss << "\n";
  }
  for (const TreeExprEdge& e : edges_) {
    oss << "T" << e.from_id << " -> T" << e.to_id;
    if (e.extra) oss << " [extra]";
    if (!e.linking_label.empty()) oss << "  L: " << e.linking_label;
    for (const std::string& c : e.correlated_labels) oss << "  C: " << c;
    oss << "\n";
  }
  return oss.str();
}

std::string TreeExpression::ToDot() const {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::ostringstream oss;
  oss << "digraph tree_expression {\n  rankdir=TB;\n  node [shape=box];\n";
  for (const QueryBlock* node : nodes_) {
    oss << "  T" << node->id << " [label=\"T" << node->id << ": ";
    for (size_t t = 0; t < node->tables.size(); ++t) {
      if (t > 0) oss << ", ";
      oss << escape(node->tables[t].alias);
    }
    oss << "\"];\n";
  }
  for (const TreeExprEdge& e : edges_) {
    // Pieces are escaped individually so the "\n" separators stay DOT
    // escape sequences.
    std::string label;
    if (!e.linking_label.empty()) label += "L: " + escape(e.linking_label);
    for (const std::string& c : e.correlated_labels) {
      if (!label.empty()) label += "\\n";
      label += "C: " + escape(c);
    }
    oss << "  T" << e.from_id << " -> T" << e.to_id << " [label=\"" << label
        << "\"";
    if (e.extra) oss << ", style=dashed";
    oss << "];\n";
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace nestra
