#include "plan/binder.h"

#include <algorithm>
#include <functional>
#include <set>

#include "common/date.h"
#include "sql/parser.h"

namespace nestra {

namespace {

/// One enclosing block during binding: the block being built plus the
/// concatenated qualified schema of its FROM tables.
struct BlockScope {
  QueryBlock* block;
  Schema schema;
};

struct ResolvedColumn {
  std::string qualified_name;
  TypeId type;
  int block_id;
};

// Parameter numbers are bounded so a typo like $999999999 cannot balloon
// the slot vector.
constexpr int kMaxParamIndex = 256;

class Binder {
 public:
  explicit Binder(const Catalog& catalog, ParamBinding* params = nullptr)
      : catalog_(catalog), params_(params) {}

  Result<QueryBlockPtr> Bind(const AstSelect& ast) {
    std::vector<BlockScope*> chain;
    return BindBlock(ast, &chain);
  }

 private:
  // `chain` lists enclosing scopes innermost-first; BindBlock pushes its own
  // scope while binding the block's WHERE clause and children.
  Result<QueryBlockPtr> BindBlock(const AstSelect& ast,
                                  std::vector<BlockScope*>* chain) {
    if (ast.from.empty()) {
      return Status::BindError("FROM clause must name at least one table");
    }
    auto block = std::make_unique<QueryBlock>();
    block->id = ++next_id_;
    block->distinct = ast.distinct;

    Schema schema;
    for (const AstTableRef& ref : ast.from) {
      NESTRA_ASSIGN_OR_RETURN(const Table* table,
                              catalog_.GetTable(ref.table));
      const std::string alias = ref.effective_alias();
      if (!used_aliases_.insert(alias).second) {
        return Status::BindError(
            "alias '" + alias +
            "' used more than once; alias repeated tables explicitly");
      }
      block->tables.push_back({ref.table, alias});
      schema = Schema::Concat(schema, table->schema().Qualify(alias));
    }
    for (const Field& f : schema.fields()) {
      block->attributes.push_back(f.name);
    }

    // Key attribute: the first table's primary key.
    {
      const QueryBlock::TableRef& first = block->tables[0];
      NESTRA_ASSIGN_OR_RETURN(const TableMetadata* meta,
                              catalog_.GetMetadata(first.table));
      if (meta->primary_key.empty()) {
        return Status::BindError(
            "table '" + first.table +
            "' has no primary key; the nested relational approach requires a "
            "unique non-null attribute per relation (register one)");
      }
      block->key_attr = first.alias + "." + meta->primary_key;
    }

    BlockScope scope{block.get(), schema};
    chain->insert(chain->begin(), &scope);

    // WHERE clause.
    if (ast.where != nullptr) {
      std::vector<const AstCond*> conjuncts;
      FlattenAnd(*ast.where, &conjuncts);
      std::vector<ExprPtr> local;
      for (const AstCond* c : conjuncts) {
        if (IsSubqueryCond(*c)) {
          NESTRA_RETURN_NOT_OK(BindSubqueryConjunct(*c, chain, block.get()));
          continue;
        }
        std::set<int> refs;
        NESTRA_ASSIGN_OR_RETURN(ExprPtr bound, BindCond(*c, *chain, &refs));
        refs.erase(block->id);
        if (refs.empty()) {
          local.push_back(std::move(bound));
        } else {
          block->correlated_preds.push_back(std::move(bound));
          for (int r : refs) {
            if (std::find(block->correlated_block_ids.begin(),
                          block->correlated_block_ids.end(),
                          r) == block->correlated_block_ids.end()) {
              block->correlated_block_ids.push_back(r);
            }
          }
        }
      }
      if (!local.empty()) block->local_pred = MakeAnd(std::move(local));
      std::sort(block->correlated_block_ids.begin(),
                block->correlated_block_ids.end());
    }

    // Select list / GROUP BY / HAVING.
    const bool is_root = chain->size() == 1;
    const bool grouped =
        ast.HasAggregates() || !ast.group_by.empty() || ast.having != nullptr;
    if (ast.select_star) {
      if (grouped) {
        return Status::BindError(
            "SELECT * cannot be combined with GROUP BY / HAVING / "
            "aggregates");
      }
      block->select_list = block->attributes;
    } else if (!is_root && ast.IsSingleAggregate() && ast.group_by.empty() &&
               ast.having == nullptr) {
      // Scalar subquery: resolve the aggregate's argument; the parent reads
      // it through linked_attr (COUNT(*) leaves it empty).
      if (ast.items[0].agg != LinkAgg::kCountStar) {
        NESTRA_ASSIGN_OR_RETURN(int idx,
                                scope.schema.Resolve(ast.items[0].column));
        block->select_list.push_back(scope.schema.field(idx).name);
      }
    } else if (grouped) {
      if (!is_root) {
        return Status::BindError(
            "GROUP BY / HAVING / multi-item aggregate select lists are only "
            "supported on the outermost query");
      }
      NESTRA_RETURN_NOT_OK(BindGroupedRoot(ast, scope, block.get()));
    } else {
      for (const AstSelectItem& item : ast.items) {
        NESTRA_ASSIGN_OR_RETURN(int idx, scope.schema.Resolve(item.column));
        block->select_list.push_back(scope.schema.field(idx).name);
      }
    }

    // ORDER BY / LIMIT: outermost query only (a subquery's ordering would
    // be meaningless for the linking predicates).
    if (!ast.order_by.empty() || ast.limit >= 0) {
      if (!is_root) {
        return Status::BindError(
            "ORDER BY / LIMIT are only supported on the outermost query");
      }
      for (const AstOrderItem& item : ast.order_by) {
        NESTRA_ASSIGN_OR_RETURN(int idx, scope.schema.Resolve(item.column));
        const std::string qualified = scope.schema.field(idx).name;
        if (block->IsGrouped() &&
            std::find(block->group_by.begin(), block->group_by.end(),
                      qualified) == block->group_by.end()) {
          return Status::BindError(
              "ORDER BY in a grouped query must use grouping columns");
        }
        block->order_by.push_back({qualified, item.ascending});
      }
      block->limit = ast.limit;
    }

    chain->erase(chain->begin());
    return block;
  }

  // Binds the grouped-root pieces: GROUP BY columns, the aggregate select
  // items (plus any extra aggregates HAVING needs), the non-aggregate
  // select items (which must be grouping columns), and the HAVING predicate
  // over the post-aggregation schema.
  Status BindGroupedRoot(const AstSelect& ast, const BlockScope& scope,
                         QueryBlock* block) {
    for (const std::string& g : ast.group_by) {
      NESTRA_ASSIGN_OR_RETURN(int idx, scope.schema.Resolve(g));
      block->group_by.push_back(scope.schema.field(idx).name);
    }

    // Registers an aggregate (deduplicated) and returns its output name.
    auto add_agg = [&](LinkAgg func,
                       const std::string& arg) -> Result<std::string> {
      std::string qualified;
      if (func != LinkAgg::kCountStar) {
        NESTRA_ASSIGN_OR_RETURN(int idx, scope.schema.Resolve(arg));
        qualified = scope.schema.field(idx).name;
      }
      const std::string name =
          func == LinkAgg::kCountStar
              ? "count(*)"
              : std::string(LinkAggToString(func)) + "(" + qualified + ")";
      for (const QueryBlock::RootAgg& a : block->aggregates) {
        if (a.output_name == name) return name;
      }
      block->aggregates.push_back({func, qualified, name});
      return name;
    };

    for (const AstSelectItem& item : ast.items) {
      if (item.is_agg) {
        NESTRA_ASSIGN_OR_RETURN(std::string name,
                                add_agg(item.agg, item.column));
        block->select_list.push_back(std::move(name));
      } else {
        NESTRA_ASSIGN_OR_RETURN(int idx, scope.schema.Resolve(item.column));
        const std::string qualified = scope.schema.field(idx).name;
        if (std::find(block->group_by.begin(), block->group_by.end(),
                      qualified) == block->group_by.end()) {
          return Status::BindError("column " + qualified +
                                   " must appear in GROUP BY or inside an "
                                   "aggregate");
        }
        block->select_list.push_back(qualified);
      }
    }

    if (ast.having != nullptr) {
      NESTRA_ASSIGN_OR_RETURN(block->having,
                              BindHaving(*ast.having, scope, block, add_agg));
    }
    return Status::OK();
  }

  // HAVING predicate: operands are grouping columns, literals, or aggregate
  // calls; the produced expression binds against the post-aggregation
  // schema (grouping columns by qualified name, aggregates by output name).
  template <typename AddAgg>
  Result<ExprPtr> BindHaving(const AstCond& c, const BlockScope& scope,
                             QueryBlock* block, AddAgg& add_agg) {
    std::function<Result<ExprPtr>(const AstOperand&)> operand =
        [&](const AstOperand& o) -> Result<ExprPtr> {
      if (o.is_arith) {
        NESTRA_ASSIGN_OR_RETURN(ExprPtr l, operand(*o.lhs));
        NESTRA_ASSIGN_OR_RETURN(ExprPtr r, operand(*o.rhs));
        return Arith(o.arith_op, std::move(l), std::move(r));
      }
      if (o.is_agg) {
        NESTRA_ASSIGN_OR_RETURN(std::string name, add_agg(o.agg, o.column));
        return Col(std::move(name));
      }
      if (o.is_column) {
        NESTRA_ASSIGN_OR_RETURN(int idx, scope.schema.Resolve(o.column));
        const std::string qualified = scope.schema.field(idx).name;
        if (std::find(block->group_by.begin(), block->group_by.end(),
                      qualified) == block->group_by.end()) {
          return Status::BindError("HAVING column " + qualified +
                                   " must appear in GROUP BY or inside an "
                                   "aggregate");
        }
        return Col(qualified);
      }
      if (o.is_param) return BindParam(o);
      return Lit(o.literal);
    };
    switch (c.kind) {
      case AstCond::Kind::kAnd:
      case AstCond::Kind::kOr: {
        std::vector<ExprPtr> children;
        for (const AstCondPtr& child : c.children) {
          NESTRA_ASSIGN_OR_RETURN(ExprPtr e,
                                  BindHaving(*child, scope, block, add_agg));
          children.push_back(std::move(e));
        }
        return c.kind == AstCond::Kind::kAnd ? MakeAnd(std::move(children))
                                             : MakeOr(std::move(children));
      }
      case AstCond::Kind::kNot: {
        NESTRA_ASSIGN_OR_RETURN(
            ExprPtr e, BindHaving(*c.children[0], scope, block, add_agg));
        return MakeNot(std::move(e));
      }
      case AstCond::Kind::kCompare: {
        NESTRA_ASSIGN_OR_RETURN(ExprPtr lhs, operand(c.lhs));
        NESTRA_ASSIGN_OR_RETURN(ExprPtr rhs, operand(c.rhs));
        return Cmp(c.op, std::move(lhs), std::move(rhs));
      }
      case AstCond::Kind::kIsNull: {
        NESTRA_ASSIGN_OR_RETURN(ExprPtr lhs, operand(c.lhs));
        return c.negated ? IsNotNull(std::move(lhs))
                         : IsNull(std::move(lhs));
      }
      default:
        return Status::BindError(
            "subqueries are not supported in HAVING clauses");
    }
  }

  static bool IsSubqueryCond(const AstCond& c) {
    return c.kind == AstCond::Kind::kExistsSubquery ||
           c.kind == AstCond::Kind::kInSubquery ||
           c.kind == AstCond::Kind::kQuantifiedSubquery ||
           c.kind == AstCond::Kind::kScalarSubquery;
  }

  static void FlattenAnd(const AstCond& c,
                         std::vector<const AstCond*>* out) {
    if (c.kind == AstCond::Kind::kAnd) {
      for (const AstCondPtr& child : c.children) FlattenAnd(*child, out);
    } else {
      out->push_back(&c);
    }
  }

  Status BindSubqueryConjunct(const AstCond& c,
                              std::vector<BlockScope*>* chain,
                              QueryBlock* parent) {
    // Linking operator.
    LinkOp op = LinkOp::kExists;
    CmpOp cmp = CmpOp::kEq;
    bool is_aggregate = false;
    bool is_scalar = false;
    switch (c.kind) {
      case AstCond::Kind::kExistsSubquery:
        op = c.negated ? LinkOp::kNotExists : LinkOp::kExists;
        break;
      case AstCond::Kind::kInSubquery:
        op = c.negated ? LinkOp::kNotIn : LinkOp::kIn;
        break;
      case AstCond::Kind::kQuantifiedSubquery:
        op = c.quant == Quantifier::kAll ? LinkOp::kAll : LinkOp::kSome;
        cmp = c.op;
        break;
      case AstCond::Kind::kScalarSubquery:
        if (c.subquery->IsSingleAggregate()) {
          is_aggregate = true;
        } else {
          // Non-aggregate scalar subquery `A θ (SELECT B ...)`: bound as
          // `A θ SOME` plus is_scalar_link. Equivalent in conjunct position
          // when the subquery yields at most one row (empty set: the SQL
          // comparison is UNKNOWN, SOME is FALSE — both drop the tuple);
          // the verifier's scalar-card rule rejects plans where the
          // at-most-one bound is not statically provable.
          op = LinkOp::kSome;
          is_scalar = true;
        }
        cmp = c.op;
        break;
      default:
        return Status::Internal("not a subquery conjunct");
    }
    if (!is_aggregate && c.subquery->HasAggregates()) {
      return Status::BindError(
          "an aggregate subquery may only be compared with a scalar "
          "comparison operator");
    }

    // Linking side (outer), resolved in the current scope chain — or a
    // constant ("0 = (select count(*) ...)").
    std::string linking_attr;
    bool linking_is_const = false;
    Value linking_const;
    if (c.kind != AstCond::Kind::kExistsSubquery) {
      if (c.lhs.is_param) {
        // The linking constant feeds plan-shape decisions (e.g. the count
        // bound of "0 = (select count(*) ...)"), so it must be known at
        // prepare time; a parameter there would silently pick a wrong plan.
        return Status::BindError(
            "a parameter cannot be the left side of a subquery predicate; "
            "use a literal");
      }
      if (c.lhs.is_column) {
        NESTRA_ASSIGN_OR_RETURN(ResolvedColumn rc,
                                ResolveColumn(c.lhs.column, *chain));
        linking_attr = rc.qualified_name;
      } else if (!c.lhs.is_arith && !c.lhs.is_agg) {
        linking_is_const = true;
        linking_const = c.lhs.literal;
      } else {
        return Status::BindError(
            "the left side of a subquery predicate must be a column or a "
            "constant");
      }
    }

    NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr child, BindBlock(*c.subquery, chain));
    child->link_op = op;
    child->link_cmp = cmp;
    child->linking_attr = std::move(linking_attr);
    child->linking_is_const = linking_is_const;
    child->linking_const = std::move(linking_const);
    child->is_aggregate_link = is_aggregate;
    child->is_scalar_link = is_scalar;

    // Linked attribute: the subquery's single select item, resolved within
    // the child only.
    if (is_aggregate) {
      child->agg = c.subquery->items[0].agg;
      // BindBlock resolved the aggregate's argument into select_list
      // (COUNT(*) leaves it empty).
      child->linked_attr =
          child->select_list.empty() ? "" : child->select_list[0];
    } else if (c.kind == AstCond::Kind::kExistsSubquery) {
      // EXISTS ignores the select list; emptiness uses the child's key.
      child->linked_attr = child->key_attr;
    } else {
      if (child->select_list.size() != 1) {
        return Status::BindError(
            "subquery of IN/ALL/ANY must select exactly one column");
      }
      child->linked_attr = child->select_list[0];
    }
    parent->children.push_back(std::move(child));
    return Status::OK();
  }

  Result<ResolvedColumn> ResolveColumn(const std::string& name,
                                       const std::vector<BlockScope*>& chain) {
    for (const BlockScope* scope : chain) {
      const Result<int> idx = scope->schema.Resolve(name);
      if (idx.ok()) {
        const Field& f = scope->schema.field(*idx);
        return ResolvedColumn{f.name, f.type, scope->block->id};
      }
      if (idx.status().code() == StatusCode::kBindError) {
        return idx.status();  // ambiguous within one scope: hard error
      }
    }
    return Status::BindError("column not found in any enclosing scope: " +
                             name);
  }

  struct BoundOperand {
    ExprPtr expr;
    bool is_column;
    TypeId type;       // column type (is_column only)
    bool is_string_literal;
    std::string text;  // literal text for date coercion
    bool is_param = false;
    int param_slot = 0;  // 0-based (is_param only)
  };

  // Creates the shared-slot ParamExpr for `$n` and records the statement's
  // parameter count. Outside a PREPARE (no ParamBinding) placeholders are a
  // hard bind error rather than a silently-NULL value.
  Result<ExprPtr> BindParam(const AstOperand& o) {
    if (params_ == nullptr) {
      return Status::BindError(
          "parameter $" + std::to_string(o.param_index) +
          " is only allowed in a PREPAREd statement");
    }
    if (o.param_index > kMaxParamIndex) {
      return Status::BindError(
          "parameter $" + std::to_string(o.param_index) +
          " exceeds the maximum of $" + std::to_string(kMaxParamIndex));
    }
    params_->count = std::max(params_->count, o.param_index);
    return ExprPtr(std::make_unique<ParamExpr>(o.param_index - 1,
                                               params_->slots));
  }

  Result<BoundOperand> BindOperand(const AstOperand& o,
                                   const std::vector<BlockScope*>& chain,
                                   std::set<int>* refs) {
    BoundOperand out;
    if (o.is_arith) {
      NESTRA_ASSIGN_OR_RETURN(BoundOperand l, BindOperand(*o.lhs, chain, refs));
      NESTRA_ASSIGN_OR_RETURN(BoundOperand r, BindOperand(*o.rhs, chain, refs));
      out.expr = Arith(o.arith_op, std::move(l.expr), std::move(r.expr));
      out.is_column = false;
      out.is_string_literal = false;
      return out;
    }
    if (o.is_agg) {
      return Status::BindError(
          "aggregate calls are only allowed in HAVING clauses");
    }
    if (o.is_column) {
      NESTRA_ASSIGN_OR_RETURN(ResolvedColumn rc, ResolveColumn(o.column, chain));
      refs->insert(rc.block_id);
      out.expr = Col(rc.qualified_name);
      out.is_column = true;
      out.type = rc.type;
      out.is_string_literal = false;
      return out;
    }
    if (o.is_param) {
      NESTRA_ASSIGN_OR_RETURN(out.expr, BindParam(o));
      out.is_column = false;
      out.is_string_literal = false;
      out.is_param = true;
      out.param_slot = o.param_index - 1;
      return out;
    }
    out.expr = Lit(o.literal);
    out.is_column = false;
    out.is_string_literal = o.literal.is_string();
    if (out.is_string_literal) out.text = o.literal.string();
    return out;
  }

  Result<ExprPtr> BindCond(const AstCond& c,
                           const std::vector<BlockScope*>& chain,
                           std::set<int>* refs) {
    switch (c.kind) {
      case AstCond::Kind::kAnd:
      case AstCond::Kind::kOr: {
        std::vector<ExprPtr> children;
        for (const AstCondPtr& child : c.children) {
          if (IsSubqueryCond(*child)) {
            return Status::BindError(
                "subquery predicates are only supported as top-level WHERE "
                "conjuncts (not under OR)");
          }
          NESTRA_ASSIGN_OR_RETURN(ExprPtr e, BindCond(*child, chain, refs));
          children.push_back(std::move(e));
        }
        return c.kind == AstCond::Kind::kAnd ? MakeAnd(std::move(children))
                                             : MakeOr(std::move(children));
      }
      case AstCond::Kind::kNot: {
        if (IsSubqueryCond(*c.children[0])) {
          return Status::BindError(
              "subquery predicates are only supported as top-level WHERE "
              "conjuncts (not under NOT)");
        }
        NESTRA_ASSIGN_OR_RETURN(ExprPtr e, BindCond(*c.children[0], chain, refs));
        return MakeNot(std::move(e));
      }
      case AstCond::Kind::kCompare: {
        NESTRA_ASSIGN_OR_RETURN(BoundOperand lhs, BindOperand(c.lhs, chain, refs));
        NESTRA_ASSIGN_OR_RETURN(BoundOperand rhs, BindOperand(c.rhs, chain, refs));
        if (lhs.is_string_literal && rhs.is_column &&
            rhs.type == TypeId::kDate) {
          NESTRA_ASSIGN_OR_RETURN(int64_t days, ParseDate(lhs.text));
          lhs.expr = Lit(Value::Date(days));
        }
        if (rhs.is_string_literal && lhs.is_column &&
            lhs.type == TypeId::kDate) {
          NESTRA_ASSIGN_OR_RETURN(int64_t days, ParseDate(rhs.text));
          rhs.expr = Lit(Value::Date(days));
        }
        // A parameter compared against a date column cannot be coerced here
        // (its value arrives at EXECUTE time); record the slot so the
        // session layer date-coerces string arguments then.
        if (lhs.is_param && rhs.is_column && rhs.type == TypeId::kDate) {
          params_->date_params.insert(lhs.param_slot);
        }
        if (rhs.is_param && lhs.is_column && lhs.type == TypeId::kDate) {
          params_->date_params.insert(rhs.param_slot);
        }
        return Cmp(c.op, std::move(lhs.expr), std::move(rhs.expr));
      }
      case AstCond::Kind::kIsNull: {
        NESTRA_ASSIGN_OR_RETURN(BoundOperand lhs, BindOperand(c.lhs, chain, refs));
        return c.negated ? IsNotNull(std::move(lhs.expr))
                         : IsNull(std::move(lhs.expr));
      }
      default:
        return Status::Internal("unexpected condition kind in BindCond");
    }
  }

  const Catalog& catalog_;
  ParamBinding* params_;  // null outside PREPARE
  std::set<std::string> used_aliases_;
  int next_id_ = 0;
};

}  // namespace

Result<QueryBlockPtr> BindQuery(const AstSelect& ast, const Catalog& catalog,
                                ParamBinding* params) {
  Binder binder(catalog, params);
  NESTRA_ASSIGN_OR_RETURN(QueryBlockPtr block, binder.Bind(ast));
  if (params != nullptr) {
    // One NULL slot per declared parameter; EXECUTE overwrites them all.
    params->slots->assign(static_cast<size_t>(params->count), Value::Null());
  }
  return block;
}

Result<QueryBlockPtr> ParseAndBind(const std::string& sql,
                                   const Catalog& catalog) {
  NESTRA_ASSIGN_OR_RETURN(AstSelectPtr ast, ParseSelect(sql));
  return BindQuery(*ast, catalog);
}

}  // namespace nestra
