#include "plan/stats/estimator.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "expr/expr.h"
#include "storage/table_stats.h"

namespace nestra {

namespace {

// Mirrors the planner's BlockLabel: EvalBlockBase records its profile stage
// as "base[<aliases>]", space separated. Estimates must key identically or
// est-vs-actual output never lines up.
std::string BaseLabel(const QueryBlock& block) {
  std::string label = "base[";
  for (size_t i = 0; i < block.tables.size(); ++i) {
    if (i > 0) label += ' ';
    const QueryBlock::TableRef& ref = block.tables[i];
    label += ref.alias.empty() ? ref.table : ref.alias;
  }
  label += ']';
  return label;
}

std::string Qualify(const std::string& alias, const std::string& column) {
  return alias.empty() ? column : alias + "." + column;
}

ColumnEstimate FromStats(const ColumnStats& s, int64_t table_rows) {
  ColumnEstimate e;
  e.has_range = s.has_range;
  e.min = s.min;
  e.max = s.max;
  e.integer_only = s.integer_only;
  e.min_i64 = s.min_i64;
  e.max_i64 = s.max_i64;
  e.distinct = static_cast<double>(s.distinct);
  e.null_frac =
      table_rows > 0 ? static_cast<double>(s.null_count) / table_rows : 0.0;
  return e;
}

void CollectConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (const auto* a = dynamic_cast<const AndExpr*>(e)) {
    for (const ExprPtr& c : a->children()) CollectConjuncts(c.get(), out);
    return;
  }
  out->push_back(e);
}

// Selectivity of every predicate shape we cannot model.
constexpr double kDefaultSelectivity = 1.0 / 3.0;

double ClampFraction(double f) { return std::min(1.0, std::max(0.0, f)); }

// Fraction of a column's non-NULL values satisfying `col op lit`, by linear
// interpolation over the column's [min, max]; narrows the column's range
// bounds for kEq and the inequalities (sound: the surviving rows really lie
// in the narrowed interval).
double RangeSelectivity(CmpOp op, double lit, ColumnEstimate* col) {
  if (!col->has_range) return kDefaultSelectivity;
  const double lo = col->min;
  const double hi = col->max;
  const double width = hi - lo;
  double sel = kDefaultSelectivity;
  switch (op) {
    case CmpOp::kEq:
      if (lit < lo || lit > hi) return 0.0;
      sel = col->distinct > 0 ? 1.0 / col->distinct : kDefaultSelectivity;
      col->min = col->max = lit;
      if (col->integer_only) {
        col->min_i64 = col->max_i64 = static_cast<int64_t>(lit);
      }
      col->distinct = 1.0;
      break;
    case CmpOp::kNe:
      sel = col->distinct > 0 ? 1.0 - 1.0 / col->distinct : 1.0;
      break;
    case CmpOp::kLt:
    case CmpOp::kLe:
      if (lit < lo) return 0.0;
      sel = width > 0 ? ClampFraction((lit - lo) / width) : 1.0;
      col->max = std::min(col->max, lit);
      if (col->integer_only) {
        col->max_i64 = std::min(
            col->max_i64, static_cast<int64_t>(std::floor(lit)));
      }
      break;
    case CmpOp::kGt:
    case CmpOp::kGe:
      if (lit > hi) return 0.0;
      sel = width > 0 ? ClampFraction((hi - lit) / width) : 1.0;
      col->min = std::max(col->min, lit);
      if (col->integer_only) {
        col->min_i64 = std::max(
            col->min_i64, static_cast<int64_t>(std::ceil(lit)));
      }
      break;
  }
  return sel;
}

// Selectivity of one conjunct against the relation's columns, narrowing
// ranges in place. NULL operands fail every comparison, so literal terms
// carry a (1 - null_frac) factor.
double ConjunctSelectivity(const Expr* e,
                           std::map<std::string, ColumnEstimate>* columns) {
  if (const auto* is_null = dynamic_cast<const IsNullExpr*>(e)) {
    const auto* col = dynamic_cast<const ColumnRef*>(&is_null->child());
    if (col == nullptr) return kDefaultSelectivity;
    const auto it = columns->find(col->name());
    if (it == columns->end()) return kDefaultSelectivity;
    double sel = is_null->negated() ? 1.0 - it->second.null_frac
                                    : it->second.null_frac;
    if (is_null->negated()) it->second.null_frac = 0.0;
    return ClampFraction(sel);
  }
  const auto* cmp = dynamic_cast<const Comparison*>(e);
  if (cmp == nullptr) return kDefaultSelectivity;

  const auto* l_col = dynamic_cast<const ColumnRef*>(&cmp->lhs());
  const auto* r_col = dynamic_cast<const ColumnRef*>(&cmp->rhs());
  const auto* l_lit = dynamic_cast<const Literal*>(&cmp->lhs());
  const auto* r_lit = dynamic_cast<const Literal*>(&cmp->rhs());

  if (l_col != nullptr && r_col != nullptr && cmp->op() == CmpOp::kEq) {
    // Intra-block equi join: 1 / max ndv, the textbook containment rule.
    const auto li = columns->find(l_col->name());
    const auto ri = columns->find(r_col->name());
    if (li == columns->end() || ri == columns->end()) {
      return kDefaultSelectivity;
    }
    const double d = std::max(li->second.distinct, ri->second.distinct);
    return d > 0 ? 1.0 / d : kDefaultSelectivity;
  }

  const ColumnRef* col = l_col != nullptr ? l_col : r_col;
  const Literal* lit = l_col != nullptr ? r_lit : l_lit;
  if (col == nullptr || lit == nullptr) return kDefaultSelectivity;
  const auto num = lit->value().AsDouble();
  if (!num.has_value()) return kDefaultSelectivity;
  const auto it = columns->find(col->name());
  if (it == columns->end()) return kDefaultSelectivity;
  // Normalize to `col op lit`.
  const CmpOp op = l_col != nullptr ? cmp->op() : FlipCmpOp(cmp->op());
  const double not_null = 1.0 - it->second.null_frac;
  return ClampFraction(RangeSelectivity(op, *num, &it->second) * not_null);
}

}  // namespace

RelEstimate EstimateBlockBase(const QueryBlock& block, const Catalog& catalog) {
  RelEstimate rel;
  rel.rows = 1.0;
  rel.max_rows = 1.0;
  for (const QueryBlock::TableRef& ref : block.tables) {
    Result<const TableStats*> stats = catalog.GetStats(ref.table);
    if (!stats.ok()) return RelEstimate{};
    const TableStats& s = **stats;
    Result<const Table*> table = catalog.GetTable(ref.table);
    if (!table.ok()) return RelEstimate{};
    const Schema& schema = (*table)->schema();
    rel.rows *= static_cast<double>(s.row_count);
    rel.max_rows *= static_cast<double>(s.row_count);
    for (size_t c = 0; c < s.columns.size(); ++c) {
      rel.columns[Qualify(ref.alias, schema.fields()[c].name)] =
          FromStats(s.columns[c], s.row_count);
    }
  }
  if (block.local_pred != nullptr) {
    std::vector<const Expr*> conjuncts;
    CollectConjuncts(block.local_pred.get(), &conjuncts);
    for (const Expr* e : conjuncts) {
      rel.rows *= ConjunctSelectivity(e, &rel.columns);
    }
  }
  rel.known = true;
  return rel;
}

bool EquiCorrelationPairs(const QueryBlock& child,
                          std::vector<CorrelationPair>* out) {
  out->clear();
  if (child.correlated_preds.empty()) return false;
  const std::set<std::string> own(child.attributes.begin(),
                                  child.attributes.end());
  for (const ExprPtr& p : child.correlated_preds) {
    const auto* cmp = dynamic_cast<const Comparison*>(p.get());
    if (cmp == nullptr || cmp->op() != CmpOp::kEq) return false;
    const auto* l = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* r = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    if (l == nullptr || r == nullptr) return false;
    const bool l_own = own.count(l->name()) > 0;
    const bool r_own = own.count(r->name()) > 0;
    if (l_own == r_own) return false;
    out->push_back(l_own ? CorrelationPair{r->name(), l->name()}
                         : CorrelationPair{l->name(), r->name()});
  }
  return true;
}

double EstimateJoinFanout(const RelEstimate& child_base,
                          const QueryBlock& child) {
  std::vector<CorrelationPair> pairs;
  if (!EquiCorrelationPairs(child, &pairs)) return child_base.rows;
  double fanout = child_base.rows;
  for (const CorrelationPair& pair : pairs) {
    const auto it = child_base.columns.find(pair.child_col);
    const double d = it != child_base.columns.end() ? it->second.distinct : 0;
    if (d > 0) fanout /= d;
  }
  return fanout;
}

RelEstimate EstimateOuterAtChild(const std::vector<const QueryBlock*>& path,
                                 const Catalog& catalog) {
  if (path.empty()) return RelEstimate{};
  RelEstimate rel = EstimateBlockBase(*path[0], catalog);
  if (!rel.known) return RelEstimate{};
  for (size_t k = 1; k < path.size(); ++k) {
    const QueryBlock& block = *path[k];
    RelEstimate base = EstimateBlockBase(block, catalog);
    if (!base.known) return RelEstimate{};
    const double fanout = EstimateJoinFanout(base, block);
    rel.rows *= std::max(fanout, 1.0);
    rel.max_rows *= std::max(base.max_rows, 1.0);
    for (auto& [name, est] : base.columns) {
      // Outer-join padding can only add NULLs to the child columns; ranges
      // stay sound bounds over the non-NULL values.
      rel.columns.emplace(name, est);
    }
  }
  return rel;
}

namespace {

// Shared "is the join intermediate worth avoiding" test behind both rewrite
// gates: the estimated left-outer-join result must clear kCostMinJoinRows
// and actually be wider than the outer input (fanout >= 2).
bool JoinIntermediateIsLarge(const QueryBlock& child,
                             const std::vector<const QueryBlock*>& path,
                             const Catalog& catalog) {
  const RelEstimate outer = EstimateOuterAtChild(path, catalog);
  if (!outer.known) return false;
  const RelEstimate base = EstimateBlockBase(child, catalog);
  if (!base.known) return false;
  const double fanout = EstimateJoinFanout(base, child);
  if (fanout < 2.0) return false;
  return outer.rows * std::max(fanout, 1.0) >= kCostMinJoinRows;
}

// Perfect-keying eligibility of one build-side key column estimate given
// the estimated build cardinality; fills the dense bounds on success.
bool PerfectKeyEligible(const ColumnEstimate& key, double build_rows,
                        JoinBuildHints* hints) {
  if (!key.integer_only || !key.has_range) return false;
  if (key.max_i64 < key.min_i64) return false;
  // Span arithmetic can overflow for extreme ranges; bail out well before.
  const double span_d = static_cast<double>(key.max_i64) -
                        static_cast<double>(key.min_i64) + 1.0;
  if (span_d > static_cast<double>(kPerfectMaxSpan)) return false;
  if (span_d > kPerfectMaxSparsity * std::max(build_rows, 16.0)) return false;
  hints->perfect = true;
  hints->perfect_min = key.min_i64;
  hints->perfect_max = key.max_i64;
  return true;
}

}  // namespace

bool CostGatesSemijoinRewrite(const QueryBlock& child,
                              const std::vector<const QueryBlock*>& path,
                              const Catalog& catalog) {
  return JoinIntermediateIsLarge(child, path, catalog);
}

bool CostGatesNestPushDown(const QueryBlock& child,
                           const std::vector<const QueryBlock*>& path,
                           const Catalog& catalog) {
  return JoinIntermediateIsLarge(child, path, catalog);
}

JoinBuildHints ChoosesJoinStrategy(const QueryBlock& child,
                                   const std::vector<const QueryBlock*>& path,
                                   const Catalog& catalog) {
  JoinBuildHints hints;
  const RelEstimate outer = EstimateOuterAtChild(path, catalog);
  if (!outer.known) return hints;
  const RelEstimate base = EstimateBlockBase(child, catalog);
  if (!base.known) return hints;
  hints.est_left_rows = outer.rows;
  hints.est_right_rows = base.rows;

  // Build-side swap: the default builds on the child base (right). When the
  // outer side is far smaller, build on it instead and stream the child.
  if (base.rows > 2.0 * outer.rows && base.rows >= kCostMinBuildRows) {
    hints.build_left = true;
  }

  // Perfect keying needs exactly one equality correlation — a second equi
  // key (e.g. the IN rewrite's A = B term) keys on tuples, not integers.
  std::vector<CorrelationPair> pairs;
  if (EquiCorrelationPairs(child, &pairs) && pairs.size() == 1) {
    const std::map<std::string, ColumnEstimate>& build_cols =
        hints.build_left ? outer.columns : base.columns;
    const std::string& build_key =
        hints.build_left ? pairs[0].outer_col : pairs[0].child_col;
    const double build_rows = hints.build_left ? outer.rows : base.rows;
    const auto it = build_cols.find(build_key);
    if (it != build_cols.end() && build_rows >= kCostMinBuildRows) {
      PerfectKeyEligible(it->second, build_rows, &hints);
    }
  }
  return hints;
}

JoinBuildHints ChoosesScanJoinStrategy(const Catalog& catalog,
                                       const QueryBlock::TableRef& ref,
                                       const std::string& key_column) {
  JoinBuildHints hints;
  Result<const TableStats*> stats = catalog.GetStats(ref.table);
  if (!stats.ok()) return hints;
  const TableStats& s = **stats;
  Result<const Table*> table = catalog.GetTable(ref.table);
  if (!table.ok()) return hints;
  const int col = (*table)->schema().IndexOfExact(key_column);
  if (col < 0) return hints;
  const double rows = static_cast<double>(s.row_count);
  hints.est_right_rows = rows;
  if (rows < kCostMinBuildRows) return hints;
  PerfectKeyEligible(FromStats(s.columns[static_cast<size_t>(col)],
                               s.row_count),
                     rows, &hints);
  return hints;
}

namespace {

void MergeStage(std::map<std::string, StageEstimate>* out,
                const std::string& label, double rows, double bound) {
  StageEstimate& e = (*out)[label];
  // Candidate labels can repeat (e.g. the same block base along different
  // routes); keep the larger bound so the entry stays sound for whichever
  // route actually ran.
  e.rows = std::max(e.rows, rows);
  e.bound = std::max(e.bound, bound);
}

// Walks the block tree the way ComputeNode does, emitting candidate stage
// estimates for every label each child might get. `outer` estimates the
// accumulated relation entering `node`'s child loop; its max_rows is sound
// for the relation at every point of that loop (each child's nest/select/
// link-select restores the row bound to the pre-join value).
void WalkStages(const QueryBlock& node, const RelEstimate& outer,
                const Catalog& catalog,
                std::map<std::string, StageEstimate>* out) {
  for (const auto& child_ptr : node.children) {
    const QueryBlock& child = *child_ptr;
    const std::string bid = std::to_string(child.id);
    const RelEstimate base = EstimateBlockBase(child, catalog);
    if (!base.known) continue;
    MergeStage(out, BaseLabel(child), base.rows, base.max_rows);

    const double fanout = EstimateJoinFanout(base, child);
    RelEstimate joined = outer;
    joined.rows = outer.rows * std::max(fanout, 1.0);
    joined.max_rows = outer.max_rows * std::max(base.max_rows, 1.0);
    for (const auto& [name, est] : base.columns) {
      joined.columns.emplace(name, est);
    }

    // Semijoin / antijoin / generic outer join all report as "join[bN]";
    // the join's output is bounded by the outer-join result either way
    // (semi/anti emit subsets of the outer input).
    MergeStage(out, "join[b" + bid + "]", joined.rows, joined.max_rows);
    // The pipelined DAG labels the rewrite joins distinctly.
    MergeStage(out, "semijoin[b" + bid + "]", outer.rows, outer.max_rows);
    MergeStage(out, "antijoin[b" + bid + "]", outer.rows, outer.max_rows);
    // Push-down / virtual-cross link selection filters (or pads) the outer
    // relation in place: output rows <= outer bound.
    MergeStage(out, "link-select[b" + bid + "]", outer.rows, outer.max_rows);
    // Magic restriction emits a subset of the child base.
    MergeStage(out, "magic[b" + bid + "]", base.rows, base.max_rows);

    WalkStages(child, joined, catalog, out);

    // Nest groups the join result by the retained outer attributes: at most
    // one group per pre-join outer row. Select and the fused pass only drop
    // (or pad) groups.
    MergeStage(out, "nest[b" + bid + "]", outer.rows, outer.max_rows);
    MergeStage(out, "select[b" + bid + "]", outer.rows, outer.max_rows);
    MergeStage(out, "fused[b" + bid + "]", outer.rows, outer.max_rows);
  }
}

}  // namespace

std::map<std::string, StageEstimate> EstimateStages(const QueryBlock& root,
                                                    const Catalog& catalog) {
  std::map<std::string, StageEstimate> out;
  const RelEstimate base = EstimateBlockBase(root, catalog);
  if (!base.known) return out;
  MergeStage(&out, BaseLabel(root), base.rows, base.max_rows);
  WalkStages(root, base, catalog, &out);

  // The single-sort fused pipeline nests the whole chain back to the root
  // attributes in one pass: at most one output row per root base row.
  MergeStage(&out, "fused nest+select", base.rows, base.max_rows);

  // Root finish: ordering/projection/distinct/limit never add rows.
  double finish_rows = base.rows;
  double finish_bound = std::max(base.max_rows, 1.0);
  if (root.IsGrouped() && root.group_by.empty()) {
    finish_rows = 1.0;  // global aggregate: exactly one row
  }
  if (root.limit >= 0) {
    finish_rows = std::min(finish_rows, static_cast<double>(root.limit));
    finish_bound = std::min(finish_bound, static_cast<double>(root.limit));
  }
  MergeStage(&out, "finish", finish_rows, finish_bound);
  MergeStage(&out, "fused-finish", finish_rows, finish_bound);
  return out;
}

}  // namespace nestra
