#ifndef NESTRA_PLAN_STATS_ESTIMATOR_H_
#define NESTRA_PLAN_STATS_ESTIMATOR_H_

#include <map>
#include <string>
#include <vector>

#include "exec/join_hints.h"
#include "plan/query_block.h"
#include "storage/catalog.h"

namespace nestra {

/// \brief Bottom-up statistics propagation over bound query blocks, and the
/// cost gates derived from it (DESIGN.md §13).
///
/// Every estimate is deterministic — same catalog stats, same numbers — so
/// the executor, EXPLAIN, and the plan verifier recompute identical
/// decisions from it. The cost-gate functions at the bottom are called ONLY
/// through the shared predicates in src/nra/cost.h; lint check 6
/// (tools/lint_engine_invariants.py) rejects direct call sites elsewhere,
/// mirroring the PR 7 consolidation rule for the two-valued rewrite.

/// Derived estimate for one (possibly qualified) column of a relation.
/// Ranges are sound bounds inherited from load-time ColumnStats and only
/// ever narrowed by predicates; `distinct` and `null_frac` are estimates.
struct ColumnEstimate {
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;
  bool integer_only = false;
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
  double distinct = 0.0;  // 0 = unknown
  double null_frac = 0.0;
};

/// Estimate for one relation (a block base, or the accumulated outer
/// relation along a path of outer joins).
struct RelEstimate {
  /// True when stats were available for every referenced table. When false
  /// the other fields are meaningless and every consumer must fall back to
  /// the flag-driven plan.
  bool known = false;
  double rows = 0.0;      // point estimate
  double max_rows = 0.0;  // sound upper bound: the relation can never exceed
                          // this many rows, whatever the predicates select
  std::map<std::string, ColumnEstimate> columns;  // by qualified name
};

/// Estimates T_i = σ_i(R_i) — the block's base relation as EvalBlockBase
/// builds it: cross size of the FROM tables, local equi-join conjuncts at
/// 1/max(ndv), literal comparisons by range interpolation (which also
/// narrows the column ranges). `max_rows` is the plain cross-product bound.
RelEstimate EstimateBlockBase(const QueryBlock& block, const Catalog& catalog);

/// Estimates the accumulated outer relation at the point where the last
/// block of `path` (root first) is about to join one of its children:
/// the root base folded through one left-outer join per non-root path
/// block. Left-outer keeps every outer row, so rows multiply by
/// max(fanout, 1) and bounds by max(child_bound, 1).
RelEstimate EstimateOuterAtChild(const std::vector<const QueryBlock*>& path,
                                 const Catalog& catalog);

/// One `outer_col = child_col` equality pulled out of a child block's
/// correlated predicates.
struct CorrelationPair {
  std::string outer_col;  // resolves in an ancestor block
  std::string child_col;  // resolves in the child block
};

/// True when every correlated predicate of `child` is a plain equality
/// between one of its own columns and an outer column (classified by
/// membership in child.attributes — no schemas needed); fills `out`.
bool EquiCorrelationPairs(const QueryBlock& child,
                          std::vector<CorrelationPair>* out);

/// Matches per outer row when `child`'s base joins on its equality
/// correlation keys: child.rows / max ndv over the child-side key columns.
/// Falls back to child.rows (cross join) when the correlation is not purely
/// equality-based.
double EstimateJoinFanout(const RelEstimate& child_base,
                          const QueryBlock& child);

// ---------------------------------------------------------------------------
// Cost gates. Call through src/nra/cost.h ONLY (lint check 6): the executor,
// EXPLAIN, and the verifier outline must route through the same inline
// predicate so the executed plan and its descriptions cannot disagree.
// ---------------------------------------------------------------------------

/// Rewrite gates fire only when the estimated join intermediate reaches
/// this many rows. Chosen above every tier-1 test workload (TPC-H scale
/// 0.01–0.04 tops out around 2.4k intermediate rows), so test plans — and
/// the suites pinned to their profiles — are identical with cost_based on
/// or off, while bench-scale data (15k orders × 4 lineitem fanout) clears
/// it comfortably.
inline constexpr double kCostMinJoinRows = 8192;

/// Build-side decisions (swap, perfect keying) need at least this many
/// estimated build rows before the table layout matters.
inline constexpr double kCostMinBuildRows = 1024;

/// Perfect (dense-array) keying caps: the key span must fit a modest array
/// (kPerfectMaxSpan entries) and be reasonably dense relative to the build
/// input (span <= kPerfectMaxSparsity × build rows), or the array is mostly
/// empty pointers and the generic table wins on locality.
inline constexpr int64_t kPerfectMaxSpan = int64_t{1} << 22;
inline constexpr double kPerfectMaxSparsity = 8.0;

/// §4.2.5 semijoin rewrite pays one dedup + hash probe to avoid
/// materializing the outer×fanout join result and nesting it back. Gate:
/// estimates known AND outer_rows × max(fanout, 1) >= kCostMinJoinRows AND
/// fanout >= 2 (at fanout < 2 the generic join intermediate is no wider
/// than the outer relation and the rewrite cannot win).
bool CostGatesSemijoinRewrite(const QueryBlock& child,
                              const std::vector<const QueryBlock*>& path,
                              const Catalog& catalog);

/// §4.2.4 nest push-down avoids the same wide intermediate by grouping the
/// child base once on its correlation key. Same gate as the semijoin
/// rewrite — both are "the join intermediate is big" decisions.
bool CostGatesNestPushDown(const QueryBlock& child,
                           const std::vector<const QueryBlock*>& path,
                           const Catalog& catalog);

/// Physical strategy for JoinWithChild(outer_rel, child_base, child, ...):
/// build-side swap when the default build input (the child base) is
/// estimated much larger than the outer, and perfect (dense-array) keying
/// when the single equality key's build-side column is integer-valued over
/// a dense span. Returns inert default hints when stats are missing.
JoinBuildHints ChoosesJoinStrategy(const QueryBlock& child,
                                   const std::vector<const QueryBlock*>& path,
                                   const Catalog& catalog);

/// Perfect-keying hints for an intra-block join inside EvalBlockBase, where
/// the build side is the freshly scanned table `ref` and the single build
/// key is `key_column` (unqualified). No build-side swap here — the
/// left-deep chain shape is fixed. Returns inert defaults when ineligible.
JoinBuildHints ChoosesScanJoinStrategy(const Catalog& catalog,
                                       const QueryBlock::TableRef& ref,
                                       const std::string& key_column);

// ---------------------------------------------------------------------------
// Per-stage estimates for EXPLAIN ANALYZE est-vs-actual output.
// ---------------------------------------------------------------------------

/// Estimated output rows of one profile stage. `rows` is the point
/// estimate; `bound` is a sound upper limit on the stage's rows_out (the
/// stats-soundness property test asserts actual <= bound). -1 = unknown.
struct StageEstimate {
  double rows = -1.0;
  double bound = -1.0;
};

/// Estimates for every profile stage label the executor may emit for this
/// query ("base[...]", "join[bN]", "link-select[bN]", ...), keyed exactly
/// like QueryProfile stage labels. Routing-agnostic: candidates are emitted
/// for all paths a block can take, with bounds sound for each; labels the
/// chosen route never emits are simply ignored at print time. Returns an
/// empty map when stats are missing for any referenced table.
std::map<std::string, StageEstimate> EstimateStages(const QueryBlock& root,
                                                    const Catalog& catalog);

}  // namespace nestra

#endif  // NESTRA_PLAN_STATS_ESTIMATOR_H_
