#ifndef NESTRA_PLAN_QUERY_BLOCK_H_
#define NESTRA_PLAN_QUERY_BLOCK_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/expr.h"
#include "nested/linking_predicate.h"

namespace nestra {

/// \brief The bound intermediate representation of one SQL query block,
/// using the paper's terminology: per block i we keep the FROM relations
/// R_i, the non-linking non-correlated WHERE conjuncts σ_i, the correlated
/// predicates C_ij, and the linking predicate L_{i-1} connecting it to its
/// parent. All column names are fully qualified as "alias.column".
struct QueryBlock {
  struct TableRef {
    std::string table;  // catalog name
    std::string alias;  // unique across the whole query
  };

  /// 1-based, depth-first left-to-right order (the paper numbers blocks
  /// top-down; the root is block 1).
  int id = 0;

  std::vector<TableRef> tables;

  /// σ_i: conjunction referencing only this block (includes intra-block join
  /// predicates when the FROM clause has several tables). May be null (TRUE).
  ExprPtr local_pred;

  /// C_ij: each conjunct references at least one ancestor block (and usually
  /// this block). Evaluated as the (outer) join condition when the plan
  /// connects this block to the accumulated outer relation.
  std::vector<ExprPtr> correlated_preds;

  // --- Linking predicate L (unused for the root block) ---
  LinkOp link_op = LinkOp::kExists;
  CmpOp link_cmp = CmpOp::kEq;     // for theta SOME / theta ALL / aggregates
  std::string linking_attr;        // qualified column of an ancestor block
  /// SQL allows a constant on the outer side ("0 = (select count(*)...)");
  /// when set, linking_attr is empty.
  bool linking_is_const = false;
  Value linking_const;
  std::string linked_attr;         // qualified column of this block (the
                                   // subquery's single select item; empty
                                   // for COUNT(*) aggregate links)
  /// Scalar-aggregate link `A θ (SELECT agg(B) ...)` — the framework's
  /// extension beyond the paper's six operators. When set, link_op is
  /// ignored and `agg`/`link_cmp` describe the predicate.
  bool is_aggregate_link = false;
  LinkAgg agg = LinkAgg::kCount;
  /// Non-aggregate scalar link `A θ (SELECT B ...)`: bound as `A θ SOME`
  /// (equivalent in conjunct position when the subquery yields at most one
  /// row — an empty set makes the SQL comparison UNKNOWN and SOME FALSE,
  /// both dropping the tuple). The verifier's scalar-card rule rejects the
  /// plan unless the at-most-one bound is statically provable.
  bool is_scalar_link = false;

  // --- Root block only ---
  struct OrderItem {
    std::string column;  // qualified (or an aggregate output name)
    bool ascending = true;
  };
  /// One aggregate computed by a grouped root query. `output_name` is the
  /// canonical "agg(qualified.column)" spelling and names the output field.
  struct RootAgg {
    LinkAgg func = LinkAgg::kCount;
    std::string column;  // qualified; empty for COUNT(*)
    std::string output_name;
  };
  /// Output columns: qualified attribute names, or aggregate output names
  /// for grouped queries.
  std::vector<std::string> select_list;
  bool distinct = false;
  std::vector<std::string> group_by;  // qualified; root only
  std::vector<RootAgg> aggregates;    // root only
  ExprPtr having;  // over the post-aggregation schema; may be null
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit

  /// True when the root applies grouping/aggregation after the WHERE phase.
  bool IsGrouped() const { return !aggregates.empty() || !group_by.empty(); }

  std::vector<std::unique_ptr<QueryBlock>> children;

  // --- Derived metadata (filled by the binder) ---
  /// The block's unique non-NULL attribute (the first table's primary key,
  /// qualified) used for emptiness detection after outer joins.
  std::string key_attr;
  /// Every qualified column of this block's tables, in schema order.
  std::vector<std::string> attributes;
  /// Ids of the ancestor blocks referenced by correlated_preds (empty for a
  /// non-correlated subquery).
  std::vector<int> correlated_block_ids;

  bool IsLeaf() const { return children.empty(); }
  bool IsRoot() const { return id == 1; }

  /// True when this block's link toward its parent is positive (dropping a
  /// failing tuple is harmless). Aggregate links count as negative: an
  /// empty group can still satisfy them (COUNT) and must survive padding.
  bool LinkIsPositive() const {
    return !is_aggregate_link && IsPositiveLinkOp(link_op);
  }

  /// The algebraic linking predicate this block contributes, over the named
  /// group (column names refer to the flat wide schema / member atoms).
  LinkingPredicate MakeLinkPredicate(const std::string& group_name) const;

  /// The outer side of the linking predicate as a scalar expression — a
  /// column reference or a literal. Used by the join-based rewrites.
  ExprPtr LinkingExpr() const {
    return linking_is_const ? Lit(linking_const) : Col(linking_attr);
  }

  /// Total number of blocks in this subtree.
  int NumBlocks() const;

  /// Max nesting depth below (a flat query is 0, one-level nested 1, ...).
  int NestingDepth() const;

  /// True when every linking operator in the subtree is positive.
  bool AllLinksPositive() const;

  /// True when the query is *linear* (every block has at most one child) —
  /// the precondition of the paper's "nested linear query" definition.
  bool IsLinear() const;

  /// True when the query is linear AND every block is correlated only to its
  /// adjacent outer block — the §4.2.3 "linear correlation" special case.
  bool IsLinearCorrelated() const;

  /// Indented multi-line rendering for debugging and tests.
  std::string ToString(int indent = 0) const;
};

using QueryBlockPtr = std::unique_ptr<QueryBlock>;

}  // namespace nestra

#endif  // NESTRA_PLAN_QUERY_BLOCK_H_
