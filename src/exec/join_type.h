#ifndef NESTRA_EXEC_JOIN_TYPE_H_
#define NESTRA_EXEC_JOIN_TYPE_H_

namespace nestra {

/// \brief Join flavors used across the physical operators.
///
/// kLeftAnti is the classical antijoin: a left row survives when NO right
/// row satisfies the condition. A condition that evaluates to UNKNOWN is
/// "not satisfied" — which is precisely why an antijoin is NOT equivalent to
/// `NOT IN` / `θ ALL` under NULLs (Section 2 of the paper).
/// kLeftAntiNullAware implements true NOT-IN semantics for the uncorrelated
/// single-key case: a NULL probe key, or any NULL build key, disqualifies
/// the left row (result Unknown -> filtered).
enum class JoinType {
  kInner,
  kLeftOuter,
  kLeftSemi,
  kLeftAnti,
  kLeftAntiNullAware,
};

constexpr const char* JoinTypeToString(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "Inner";
    case JoinType::kLeftOuter:
      return "LeftOuter";
    case JoinType::kLeftSemi:
      return "LeftSemi";
    case JoinType::kLeftAnti:
      return "LeftAnti";
    case JoinType::kLeftAntiNullAware:
      return "LeftAntiNullAware";
  }
  return "?";
}

}  // namespace nestra

#endif  // NESTRA_EXEC_JOIN_TYPE_H_
