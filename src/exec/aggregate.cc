#include "exec/aggregate.h"

#include <algorithm>

namespace nestra {

namespace {

TypeId AggOutputType(AggFunc func, const Schema& in, int col_idx) {
  switch (func) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return TypeId::kInt64;
    case AggFunc::kAvg:
      return TypeId::kFloat64;
    case AggFunc::kSum:
    case AggFunc::kMin:
    case AggFunc::kMax:
      return col_idx >= 0 ? in.field(col_idx).type : TypeId::kInt64;
  }
  return TypeId::kInt64;
}

}  // namespace

AggregateNode::AggregateNode(ExecNodePtr child,
                             std::vector<std::string> group_by,
                             std::vector<AggSpec> aggs)
    : child_(std::move(child)),
      group_by_(std::move(group_by)),
      aggs_(std::move(aggs)) {
  // Schema computed eagerly; unresolvable columns surface at Open().
  const Schema& in = child_->output_schema();
  std::vector<Field> fields;
  for (const std::string& g : group_by_) {
    const Result<int> idx = in.Resolve(g);
    if (idx.ok()) {
      fields.push_back(in.field(*idx));
    } else {
      fields.emplace_back(g, TypeId::kInt64);
    }
  }
  for (const AggSpec& a : aggs_) {
    int idx = -1;
    if (a.func != AggFunc::kCountStar) {
      const Result<int> r = in.Resolve(a.column);
      if (r.ok()) idx = *r;
    }
    fields.emplace_back(a.output_name, AggOutputType(a.func, in, idx),
                        /*nullable=*/true);
  }
  schema_ = Schema(std::move(fields));
}

Status AggregateNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  const Schema& in = child_->output_schema();
  group_idx_.clear();
  agg_idx_.clear();
  for (const std::string& g : group_by_) {
    NESTRA_ASSIGN_OR_RETURN(int idx, in.Resolve(g));
    group_idx_.push_back(idx);
  }
  for (const AggSpec& a : aggs_) {
    if (a.func == AggFunc::kCountStar) {
      agg_idx_.push_back(-1);
    } else {
      NESTRA_ASSIGN_OR_RETURN(int idx, in.Resolve(a.column));
      agg_idx_.push_back(idx);
    }
  }

  std::unordered_map<std::vector<Value>, std::vector<AggState>,
                     SqlValueKeyHash, SqlValueKeyEq>
      groups;
  Row row;
  bool eof = false;
  int64_t input_rows = 0;
  while (true) {
    NESTRA_RETURN_NOT_OK(child_->Next(&row, &eof));
    if (eof) break;
    ++input_rows;
    std::vector<Value> key;
    key.reserve(group_idx_.size());
    for (int idx : group_idx_) key.push_back(row[idx]);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(std::move(key),
                          std::vector<AggState>(aggs_.size()))
               .first;
    }
    Accumulate(&it->second, row);
  }

  results_.clear();
  pos_ = 0;
  if (group_by_.empty() && input_rows == 0) {
    // Scalar aggregate over empty input still yields one row.
    results_.push_back(Finalize({}, std::vector<AggState>(aggs_.size())));
  } else {
    results_.reserve(groups.size());
    for (const auto& [key, states] : groups) {
      results_.push_back(Finalize(key, states));
    }
    // Deterministic output order for tests.
    std::sort(results_.begin(), results_.end(),
              [](const Row& a, const Row& b) { return Row::Compare(a, b) < 0; });
  }
  return Status::OK();
}

void AggregateNode::Accumulate(std::vector<AggState>* states,
                               const Row& row) const {
  for (size_t i = 0; i < aggs_.size(); ++i) {
    AggState& st = (*states)[i];
    if (aggs_[i].func == AggFunc::kCountStar) {
      ++st.count;
      continue;
    }
    const Value& v = row[agg_idx_[i]];
    if (v.is_null()) continue;
    switch (aggs_[i].func) {
      case AggFunc::kCountStar:
        break;  // handled above
      case AggFunc::kCount:
        ++st.count;
        break;
      case AggFunc::kSum:
      case AggFunc::kAvg: {
        ++st.count;
        if (!v.is_int()) st.sum_is_int = false;
        st.sum += v.AsDouble().value_or(0);
        break;
      }
      case AggFunc::kMin: {
        if (st.extreme.is_null() ||
            Value::TotalOrderCompare(v, st.extreme) < 0) {
          st.extreme = v;
        }
        break;
      }
      case AggFunc::kMax: {
        if (st.extreme.is_null() ||
            Value::TotalOrderCompare(v, st.extreme) > 0) {
          st.extreme = v;
        }
        break;
      }
    }
  }
}

Row AggregateNode::Finalize(const std::vector<Value>& key,
                            const std::vector<AggState>& states) const {
  Row out;
  out.Reserve(key.size() + states.size());
  for (const Value& k : key) out.Append(k);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggState& st = states[i];
    switch (aggs_[i].func) {
      case AggFunc::kCountStar:
      case AggFunc::kCount:
        out.Append(Value::Int64(st.count));
        break;
      case AggFunc::kSum:
        if (st.count == 0) {
          out.Append(Value::Null());
        } else if (st.sum_is_int) {
          out.Append(Value::Int64(static_cast<int64_t>(st.sum)));
        } else {
          out.Append(Value::Float64(st.sum));
        }
        break;
      case AggFunc::kAvg:
        out.Append(st.count == 0 ? Value::Null()
                                 : Value::Float64(st.sum / st.count));
        break;
      case AggFunc::kMin:
      case AggFunc::kMax:
        out.Append(st.extreme);
        break;
    }
  }
  return out;
}

Status AggregateNode::NextImpl(Row* out, bool* eof) {
  if (pos_ >= results_.size()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = std::move(results_[pos_++]);
  return Status::OK();
}

void AggregateNode::CloseImpl() {
  results_.clear();
  child_->Close();
}

}  // namespace nestra
