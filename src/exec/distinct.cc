#include "exec/distinct.h"

namespace nestra {

Status DistinctNode::NextImpl(Row* out, bool* eof) {
  while (true) {
    NESTRA_RETURN_NOT_OK(child_->Next(out, eof));
    if (*eof) return Status::OK();
    if (seen_.insert(*out).second) return Status::OK();
  }
}

}  // namespace nestra
