#ifndef NESTRA_EXEC_JOIN_HINTS_H_
#define NESTRA_EXEC_JOIN_HINTS_H_

#include <cstdint>

namespace nestra {

/// \brief Planner-chosen physical strategy for one hash join, derived from
/// table statistics (src/plan/stats/estimator.h). Plain data with inert
/// defaults: a default-constructed hints object reproduces the pre-stats
/// behaviour bit for bit (build right, generic chained table).
///
/// The join treats every field as advisory-but-checked: `perfect` only
/// engages when the single-equi-key precondition holds at Open, and the
/// build falls back to the generic table if any runtime key lands outside
/// [perfect_min, perfect_max] — so a stale or wrong estimate can cost time,
/// never correctness.
struct JoinBuildHints {
  /// Build the hash table on the LEFT (probe-semantic) input and stream the
  /// right input past it, because the estimator says the right side is much
  /// larger. Output order and join semantics are unchanged: results are
  /// re-emitted in left arrival order with right matches in right arrival
  /// order, byte-identical to the default right-build plan.
  bool build_left = false;

  /// Use a dense direct-index array instead of a hash table: build keys are
  /// integers spanning [perfect_min, perfect_max]. Bounds come from exact
  /// load-time column min/max, so only re-registration (which bumps
  /// TableVersion) can invalidate them.
  bool perfect = false;
  int64_t perfect_min = 0;
  int64_t perfect_max = 0;

  /// Estimated input cardinalities (rows; < 0 = unknown), recorded for
  /// EXPLAIN est-vs-actual output.
  double est_left_rows = -1.0;
  double est_right_rows = -1.0;

  bool IsDefault() const { return !build_left && !perfect; }
};

}  // namespace nestra

#endif  // NESTRA_EXEC_JOIN_HINTS_H_
