#include "exec/nested_loop_join.h"

namespace nestra {

NestedLoopJoinNode::NestedLoopJoinNode(ExecNodePtr left, ExecNodePtr right,
                                       JoinType join_type, ExprPtr condition)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_type_(join_type),
      condition_(std::move(condition)) {
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
    std::vector<Field> fields = rs.fields();
    if (join_type_ == JoinType::kLeftOuter) {
      for (Field& f : fields) f.nullable = true;
    }
    schema_ = Schema::Concat(ls, Schema(std::move(fields)));
  } else {
    schema_ = ls;
  }
  right_width_ = rs.num_fields();
}

Status NestedLoopJoinNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(left_->Open());
  NESTRA_RETURN_NOT_OK(right_->Open());
  NESTRA_ASSIGN_OR_RETURN(
      bound_,
      BoundPredicate::Make(condition_.get(),
                           Schema::Concat(left_->output_schema(),
                                          right_->output_schema())));
  right_rows_.clear();
  Row row;
  bool eof = false;
  while (true) {
    NESTRA_RETURN_NOT_OK(right_->Next(&row, &eof));
    if (eof) break;
    right_rows_.push_back(std::move(row));
    row = Row();
  }
  left_valid_ = false;
  return Status::OK();
}

Status NestedLoopJoinNode::NextImpl(Row* out, bool* eof) {
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      NESTRA_RETURN_NOT_OK(left_->Next(&left_row_, &left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
      left_valid_ = true;
      emitted_match_ = false;
      right_pos_ = 0;
    }

    while (right_pos_ < right_rows_.size()) {
      const Row& right_row = right_rows_[right_pos_++];
      Row combined = Row::Concat(left_row_, right_row);
      if (!bound_.Matches(combined)) continue;
      emitted_match_ = true;
      switch (join_type_) {
        case JoinType::kInner:
        case JoinType::kLeftOuter:
          *out = std::move(combined);
          *eof = false;
          return Status::OK();
        case JoinType::kLeftSemi:
          *out = left_row_;
          *eof = false;
          left_valid_ = false;
          return Status::OK();
        case JoinType::kLeftAnti:
        case JoinType::kLeftAntiNullAware:
          right_pos_ = right_rows_.size();
          break;
      }
    }

    const bool matched = emitted_match_;
    const Row current = left_row_;
    left_valid_ = false;

    switch (join_type_) {
      case JoinType::kInner:
      case JoinType::kLeftSemi:
        break;
      case JoinType::kLeftOuter:
        if (!matched) {
          *out = Row::Concat(current, Row::Nulls(right_width_));
          *eof = false;
          return Status::OK();
        }
        break;
      case JoinType::kLeftAnti:
      case JoinType::kLeftAntiNullAware:
        // The null-aware variant is only meaningful for equality keys; the
        // nested-loop form treats it as a plain antijoin.
        if (!matched) {
          *out = current;
          *eof = false;
          return Status::OK();
        }
        break;
    }
  }
}

void NestedLoopJoinNode::CloseImpl() {
  stats_.build_rows = static_cast<int64_t>(right_rows_.size());
  right_rows_.clear();
  left_->Close();
  right_->Close();
}

}  // namespace nestra
