#ifndef NESTRA_EXEC_LIMIT_H_
#define NESTRA_EXEC_LIMIT_H_

#include "exec/exec_node.h"

namespace nestra {

/// \brief Emits at most `limit` rows of the child, then reports EOF without
/// draining it.
class LimitNode final : public ExecNode {
 public:
  LimitNode(ExecNodePtr child, int64_t limit)
      : child_(std::move(child)), limit_(limit) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "Limit"; }
  PipelineRole role() const override {
    return PipelineRole::kSerialStreaming;
  }
  std::vector<ExecNode*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override {
    emitted_ = 0;
    return child_->Open();
  }
  Status NextImpl(Row* out, bool* eof) override {
    if (emitted_ >= limit_) {
      *eof = true;
      return Status::OK();
    }
    NESTRA_RETURN_NOT_OK(child_->Next(out, eof));
    if (!*eof) ++emitted_;
    return Status::OK();
  }
  void CloseImpl() override { child_->Close(); }

 private:
  ExecNodePtr child_;
  int64_t limit_;
  int64_t emitted_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_LIMIT_H_
