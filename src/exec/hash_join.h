#ifndef NESTRA_EXEC_HASH_JOIN_H_
#define NESTRA_EXEC_HASH_JOIN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/exec_node.h"
#include "exec/join_type.h"
#include "expr/evaluator.h"

namespace nestra {

/// \brief Hash join: builds on the right input, probes with the left.
///
/// The join condition is `AND(equi pairs) AND residual`; the residual (an
/// arbitrary predicate over the concatenated schema) is evaluated per
/// candidate match, so conditions like the paper's
/// `T.K = R.C AND T.L <> S.I` run as a hash join on the equality with the
/// inequality as residual. With no equi pairs the build degenerates into a
/// single bucket (a filtered Cartesian product — the paper's "virtual
/// Cartesian product" for non-correlated subqueries).
///
/// For kInner/kLeftOuter the output schema is left ++ right (right side
/// NULL-padded for unmatched outer rows — this padding is what the nested
/// relational approach later reads as "empty subquery result" via the inner
/// relation's primary key). For semi/anti flavors the output schema is the
/// left schema.
class HashJoinNode final : public ExecNode {
 public:
  HashJoinNode(ExecNodePtr left, ExecNodePtr right, JoinType join_type,
               std::vector<EquiPair> equi, ExprPtr residual);

  const Schema& output_schema() const override { return schema_; }
  Status Open() override;
  Status Next(Row* out, bool* eof) override;
  void Close() override;
  std::string name() const override {
    return std::string("HashJoin[") + JoinTypeToString(join_type_) + "]";
  }

  /// Number of probe-side rows processed so far (for bench counters).
  int64_t probe_count() const { return probe_count_; }

 private:
  struct KeyHash {
    size_t operator()(const std::vector<Value>& key) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (const Value& v : key) {
        h ^= v.Hash();
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };

  // Advances to the next left row and computes its candidate bucket.
  Status AdvanceLeft(bool* eof);

  ExecNodePtr left_;
  ExecNodePtr right_;
  JoinType join_type_;
  std::vector<EquiPair> equi_;
  ExprPtr residual_;

  Schema schema_;
  int right_width_ = 0;

  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  BoundPredicate bound_residual_;  // over left ++ right

  std::unordered_map<std::vector<Value>, std::vector<Row>, KeyHash> buckets_;
  bool build_has_null_key_ = false;  // for kLeftAntiNullAware
  int64_t build_rows_ = 0;

  // Probe state.
  Row left_row_;
  const std::vector<Row>* candidates_ = nullptr;
  size_t cand_pos_ = 0;
  bool emitted_match_ = false;  // any residual-passing match for left_row_
  bool left_valid_ = false;
  int64_t probe_count_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_HASH_JOIN_H_
