#ifndef NESTRA_EXEC_HASH_JOIN_H_
#define NESTRA_EXEC_HASH_JOIN_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash_key.h"
#include "exec/exec_node.h"
#include "exec/join_hints.h"
#include "exec/join_type.h"
#include "expr/evaluator.h"

namespace nestra {

/// \brief Hash join: builds on the right input, probes with the left.
///
/// The join condition is `AND(equi pairs) AND residual`; the residual (an
/// arbitrary predicate over the concatenated schema) is evaluated per
/// candidate match, so conditions like the paper's
/// `T.K = R.C AND T.L <> S.I` run as a hash join on the equality with the
/// inequality as residual. With no equi pairs the build degenerates into a
/// single bucket (a filtered Cartesian product — the paper's "virtual
/// Cartesian product" for non-correlated subqueries).
///
/// For kInner/kLeftOuter the output schema is left ++ right (right side
/// NULL-padded for unmatched outer rows — this padding is what the nested
/// relational approach later reads as "empty subquery result" via the inner
/// relation's primary key). For semi/anti flavors the output schema is the
/// left schema.
///
/// Key equality follows SQL comparison semantics (common/hash_key.h): an
/// int64 key matches a float64 key of equal numeric value, exactly as the
/// nested-loop join's `Value::Apply(kEq)` would.
///
/// With `num_threads > 1` the build hashes the materialized right input in
/// parallel and inserts into `num_threads` hash-partitioned tables (each
/// partition scans rows in arrival order, so bucket candidate order — and
/// therefore output order — matches the serial build exactly); the probe
/// materializes the left input and probes it in row-range morsels whose
/// per-morsel outputs are concatenated in morsel order. Both sides are
/// byte-identical to the serial `num_threads == 1` streaming path.
class HashJoinNode final : public ExecNode {
 public:
  /// With `vectorized` the build and probe inputs are drained via
  /// NextBatch (so batch-capable children stay columnar end-to-end) and
  /// the streaming probe runs batch-at-a-time with one key-hash array per
  /// probe batch. Output order and content are identical either way.
  /// `hints` carries the planner's cost-based physical strategy
  /// (exec/join_hints.h): build-side swap and/or perfect (dense-array)
  /// keying. Default hints reproduce the pre-stats behaviour bit for bit;
  /// non-default hints change only the internal table layout and work
  /// order, never output rows or their order.
  HashJoinNode(ExecNodePtr left, ExecNodePtr right, JoinType join_type,
               std::vector<EquiPair> equi, ExprPtr residual,
               int num_threads = 1, bool vectorized = false,
               const JoinBuildHints& hints = {});

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override {
    return std::string("HashJoin[") + JoinTypeToString(join_type_) + "]";
  }
  /// Physical strategy annotation for EXPLAIN ANALYZE ("build=left",
  /// "perfect", comma separated); empty for the default plan.
  std::string detail() const override;
  // The build side is consumed entirely in Open (and probe output begins
  // only after), which is what pins joins to the breaker role.
  PipelineRole role() const override { return PipelineRole::kBreaker; }
  std::vector<ExecNode*> children() const override {
    return {left_.get(), right_.get()};
  }

  /// Number of probe-side rows processed so far (for bench counters).
  int64_t probe_count() const { return probe_count_; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  Status NextBatchImpl(RowBatch* out, bool* eof) override;
  void CloseImpl() override;

 private:
  using Buckets = std::unordered_map<std::vector<Value>, std::vector<Row>,
                                     SqlValueKeyHash, SqlValueKeyEq>;

  // Drains the right child and builds the partitioned hash table.
  Status BuildTable();
  // Dense-array build over the single equality key; false (leaving the
  // rows untouched) when a key violates the hinted [min, max] int range.
  bool TryPerfectBuild(std::vector<Row>* rows,
                       const std::vector<uint8_t>& has_null);
  // Maps a probe key value to its dense array key; false when the value
  // cannot equal any build key (NULL-free non-integral or out of range).
  bool DenseKeyOf(const Value& v, int64_t* key) const;
  // Emits every output row produced by one probe row (matches in build
  // order, then the per-row outer/anti epilogue). Thread-safe.
  void ProbeRow(const Row& left_row, std::vector<Row>* out) const;
  // ProbeRow against the perfect array; `scratch` holds the candidate list
  // so concurrent morsels never share state.
  void ProbeRowPerfect(const Row& left_row,
                       std::vector<const Row*>* scratch,
                       std::vector<Row>* out) const;
  // The shared per-probe-row epilogue over an already-gathered candidate
  // list (matches in candidate order, then outer/anti handling).
  void EmitMatches(const Row& left_row, bool probe_null,
                   const std::vector<const Row*>& candidates,
                   std::vector<Row>* out) const;
  // Fills flat_candidates_ with the build rows whose key equals `key`
  // (combined hash `h`), in arrival order.
  void GatherFlatCandidates(const std::vector<Value>& key, size_t h) const;
  // Materializes the left input and probes it with row-range morsels.
  Status ParallelProbe();
  // hints_.build_left: hashes the left input instead and streams the right
  // past it, re-emitting in left order; fills pending_ with the whole
  // result (byte-identical to the default build).
  Status MirroredBuildProbe();
  // Fills probe_hashes_ / probe_null_ for the current probe batch, one
  // SqlHash key combine per row, column-at-a-time.
  void HashProbeBatch();
  // Probes row `i` of probe_batch_, appending outputs to `out` columns
  // (without touching the batch row count); returns rows appended.
  int64_t ProbeBatchRow(int64_t i, RowBatch* out);
  // Accounts `bytes` of build/probe state against OperatorStats and the
  // current query tracker (ResourceExhausted past the soft limit); called
  // at serial fold points only, never inside morsel workers.
  Status ChargeMem(int64_t bytes);
  // Returns previously charged bytes (peak stays).
  void ReleaseMem(int64_t bytes);

  ExecNodePtr left_;
  ExecNodePtr right_;
  JoinType join_type_;
  std::vector<EquiPair> equi_;
  ExprPtr residual_;
  int num_threads_ = 1;
  JoinBuildHints hints_;

  Schema schema_;
  int right_width_ = 0;

  std::vector<int> left_key_idx_;
  std::vector<int> right_key_idx_;
  BoundPredicate bound_residual_;  // over left ++ right

  std::vector<Buckets> partitions_;
  bool build_has_null_key_ = false;  // for kLeftAntiNullAware
  int64_t build_rows_ = 0;

  // Flat chained hash table used by the serial vectorized build: the
  // drained rows stay in flat_rows_ and buckets are index chains
  // (flat_head_ per bucket, flat_next_ per row) kept in arrival order, so
  // candidate enumeration — and therefore output order — matches the
  // bucketed build exactly, without a node/key/bucket allocation per
  // insert. partitions_ stays empty while this is active.
  bool flat_built_ = false;
  std::vector<Row> flat_rows_;
  std::vector<size_t> flat_hash_;
  std::vector<int32_t> flat_head_;
  std::vector<int32_t> flat_next_;
  size_t flat_mask_ = 0;
  // Scratch for the current probe's key-equal candidates; the flat table
  // only exists in serial execution, so one shared scratch is safe.
  mutable std::vector<const Row*> flat_candidates_;

  // Perfect (dense-array) table: build rows stay in flat_rows_ and each
  // array slot heads an arrival-order index chain through flat_next_ —
  // direct indexing by key - perfect_min, no hashing. Engages only when
  // TryPerfectBuild validated every build key against the hinted range.
  bool perfect_built_ = false;
  std::vector<int32_t> perfect_head_;

  // Probe state: pending_ holds the not-yet-emitted outputs — one probe
  // row's worth when streaming serially, the whole join result when
  // materialized_ is set (parallel probe or mirrored build; left_done_ is
  // then already set).
  std::vector<Row> pending_;
  size_t pending_pos_ = 0;
  bool left_done_ = false;
  bool materialized_ = false;
  int64_t probe_count_ = 0;
  // Bytes currently charged to the query tracker (released in CloseImpl).
  int64_t charged_mem_ = 0;

  // Vectorized streaming-probe state.
  bool vectorized_ = false;
  RowBatch probe_batch_;
  std::vector<size_t> probe_hashes_;
  std::vector<uint8_t> probe_null_;
  int64_t probe_pos_ = 0;
  std::vector<Value> scratch_key_;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_HASH_JOIN_H_
