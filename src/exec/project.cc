#include "exec/project.h"

namespace nestra {

ProjectNode::ProjectNode(ExecNodePtr child, std::vector<std::string> columns,
                         std::vector<std::string> output_names)
    : child_(std::move(child)),
      columns_(std::move(columns)),
      output_names_(std::move(output_names)) {}

Status ProjectNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  if (!output_names_.empty() && output_names_.size() != columns_.size()) {
    return Status::InvalidArgument(
        "projection rename list length mismatches column list");
  }
  const Schema& in = child_->output_schema();
  indices_.clear();
  std::vector<Field> fields;
  for (size_t i = 0; i < columns_.size(); ++i) {
    NESTRA_ASSIGN_OR_RETURN(int idx, in.Resolve(columns_[i]));
    indices_.push_back(idx);
    Field f = in.field(idx);
    if (!output_names_.empty()) f.name = output_names_[i];
    fields.push_back(std::move(f));
  }
  schema_ = Schema(std::move(fields));
  return Status::OK();
}

Status ProjectNode::NextImpl(Row* out, bool* eof) {
  Row in;
  NESTRA_RETURN_NOT_OK(child_->Next(&in, eof));
  if (*eof) return Status::OK();
  *out = in.Select(indices_);
  return Status::OK();
}

}  // namespace nestra
