#include "exec/project.h"

namespace nestra {

ProjectNode::ProjectNode(ExecNodePtr child, std::vector<std::string> columns,
                         std::vector<std::string> output_names)
    : child_(std::move(child)),
      columns_(std::move(columns)),
      output_names_(std::move(output_names)) {}

Status ProjectNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  if (!output_names_.empty() && output_names_.size() != columns_.size()) {
    return Status::InvalidArgument(
        "projection rename list length mismatches column list");
  }
  const Schema& in = child_->output_schema();
  indices_.clear();
  std::vector<Field> fields;
  for (size_t i = 0; i < columns_.size(); ++i) {
    NESTRA_ASSIGN_OR_RETURN(int idx, in.Resolve(columns_[i]));
    indices_.push_back(idx);
    Field f = in.field(idx);
    if (!output_names_.empty()) f.name = output_names_[i];
    fields.push_back(std::move(f));
  }
  schema_ = Schema(std::move(fields));
  return Status::OK();
}

Status ProjectNode::NextImpl(Row* out, bool* eof) {
  Row in;
  NESTRA_RETURN_NOT_OK(child_->Next(&in, eof));
  if (*eof) return Status::OK();
  *out = in.Select(indices_);
  return Status::OK();
}

Status ProjectNode::NextBatchImpl(RowBatch* out, bool* eof) {
  bool child_eof = false;
  NESTRA_RETURN_NOT_OK(child_->NextBatch(&input_, &child_eof));
  if (child_eof) {
    *eof = true;
    return Status::OK();
  }
  const int64_t n = input_.num_rows();
  for (size_t c = 0; c < indices_.size(); ++c) {
    const ColumnVector& in = input_.column(indices_[c]);
    ColumnVector& dst = out->column(static_cast<int>(c));
    for (int64_t i = 0; i < n; ++i) dst.AppendFrom(in, i);
  }
  out->set_num_rows(n);
  *eof = out->empty();
  return Status::OK();
}

}  // namespace nestra
