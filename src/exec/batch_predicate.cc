#include "exec/batch_predicate.h"

#include <algorithm>
#include <utility>

namespace nestra {

namespace {

bool CmpHolds(CmpOp op, int c) {
  switch (op) {
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

// The engine's numeric comparison result: NaN compares "equal" to
// everything here, exactly as Value::Compare's double path does.
int CompareDoubles(double x, double y) { return x < y ? -1 : (x > y ? 1 : 0); }

int CompareInts(int64_t x, int64_t y) { return x < y ? -1 : (x > y ? 1 : 0); }

// Runs `pred(i)` over the batch (first term) or the current selection
// (later terms), keeping the matching indices in `sel`.
template <typename Pred>
void ApplyPred(int64_t num_rows, bool first, std::vector<int32_t>* sel,
               Pred pred) {
  if (first) {
    sel->clear();
    sel->reserve(num_rows);
    for (int64_t i = 0; i < num_rows; ++i) {
      if (pred(i)) sel->push_back(static_cast<int32_t>(i));
    }
    return;
  }
  size_t w = 0;
  for (const int32_t i : *sel) {
    if (pred(i)) (*sel)[w++] = i;
  }
  sel->resize(w);
}

// One-sided NULL guard: when the operand is proven non-NULL the check (and
// the null-vector load) disappears from the kernel.
template <typename Pred>
void Apply1(int64_t n, bool first, bool non_null,
            const std::vector<uint8_t>& nulls, std::vector<int32_t>* sel,
            Pred body) {
  if (non_null) {
    ApplyPred(n, first, sel, body);
  } else {
    ApplyPred(n, first, sel,
              [&](int64_t i) { return nulls[i] == 0 && body(i); });
  }
}

// Two-sided NULL guard for column-vs-column kernels.
template <typename Pred>
void Apply2(int64_t n, bool first, bool l_non_null, bool r_non_null,
            const std::vector<uint8_t>& ln, const std::vector<uint8_t>& rn,
            std::vector<int32_t>* sel, Pred body) {
  if (l_non_null && r_non_null) {
    ApplyPred(n, first, sel, body);
  } else if (l_non_null) {
    ApplyPred(n, first, sel,
              [&](int64_t i) { return rn[i] == 0 && body(i); });
  } else if (r_non_null) {
    ApplyPred(n, first, sel,
              [&](int64_t i) { return ln[i] == 0 && body(i); });
  } else {
    ApplyPred(n, first, sel, [&](int64_t i) {
      return ln[i] == 0 && rn[i] == 0 && body(i);
    });
  }
}

// Storage classes a non-generic ColumnVector can expose to the kernels.
enum class StorageClass { kInt, kDouble, kString, kGeneric };

StorageClass ClassOf(const ColumnVector& col) {
  if (col.generic()) return StorageClass::kGeneric;
  switch (col.type()) {
    case TypeId::kInt64:
    case TypeId::kDate:
      return StorageClass::kInt;
    case TypeId::kFloat64:
      return StorageClass::kDouble;
    case TypeId::kString:
      return StorageClass::kString;
  }
  return StorageClass::kGeneric;
}

}  // namespace

bool VectorizedPredicate::Compile(const Expr* expr, const Schema& schema,
                                  VectorizedPredicate* out) {
  out->terms_.clear();
  if (expr == nullptr) return true;

  if (const auto* conj = dynamic_cast<const AndExpr*>(expr)) {
    for (const ExprPtr& child : conj->children()) {
      VectorizedPredicate scratch;
      if (!Compile(child.get(), schema, &scratch)) return false;
      for (Term& t : scratch.terms_) out->terms_.push_back(std::move(t));
    }
    return true;
  }

  if (const auto* cmp = dynamic_cast<const Comparison*>(expr)) {
    const auto* lcol = dynamic_cast<const ColumnRef*>(&cmp->lhs());
    const auto* rcol = dynamic_cast<const ColumnRef*>(&cmp->rhs());
    const auto* llit = dynamic_cast<const Literal*>(&cmp->lhs());
    const auto* rlit = dynamic_cast<const Literal*>(&cmp->rhs());
    Term term;
    term.op = cmp->op();
    if (lcol != nullptr && rcol != nullptr) {
      Result<int> li = schema.Resolve(lcol->name());
      Result<int> ri = schema.Resolve(rcol->name());
      if (!li.ok() || !ri.ok()) return false;
      term.kind = TermKind::kCmpColCol;
      term.lhs = *li;
      term.rhs = *ri;
    } else if (lcol != nullptr && rlit != nullptr) {
      Result<int> li = schema.Resolve(lcol->name());
      if (!li.ok()) return false;
      term.kind = TermKind::kCmpColLit;
      term.lhs = *li;
      term.literal = rlit->value();
    } else if (llit != nullptr && rcol != nullptr) {
      Result<int> ri = schema.Resolve(rcol->name());
      if (!ri.ok()) return false;
      term.kind = TermKind::kCmpColLit;
      term.op = FlipCmpOp(cmp->op());
      term.lhs = *ri;
      term.literal = llit->value();
    } else {
      return false;
    }
    out->terms_.push_back(std::move(term));
    return true;
  }

  if (const auto* isnull = dynamic_cast<const IsNullExpr*>(expr)) {
    // Only over a bare column; IS NULL over arithmetic falls back.
    const auto* col = dynamic_cast<const ColumnRef*>(&isnull->child());
    if (col == nullptr) return false;
    Result<int> idx = schema.Resolve(col->name());
    if (!idx.ok()) return false;
    Term term;
    term.kind = TermKind::kIsNull;
    term.lhs = *idx;
    term.negated = isnull->negated();
    out->terms_.push_back(std::move(term));
    return true;
  }

  return false;
}

bool VectorizedPredicate::Compile(const Expr* expr, const Schema& schema,
                                  const std::vector<bool>& non_null_cols,
                                  VectorizedPredicate* out) {
  if (!Compile(expr, schema, out)) return false;
  const auto proven = [&](int col) {
    return col >= 0 && col < static_cast<int>(non_null_cols.size()) &&
           non_null_cols[col];
  };
  for (Term& t : out->terms_) {
    t.lhs_non_null = proven(t.lhs);
    if (t.kind == TermKind::kCmpColCol) t.rhs_non_null = proven(t.rhs);
  }
  return true;
}

void VectorizedPredicate::SelectTerm(const RowBatch& batch, const Term& term,
                                     bool first,
                                     std::vector<int32_t>* sel) const {
  const int64_t n = batch.num_rows();
  const ColumnVector& lhs = batch.column(term.lhs);
  const std::vector<uint8_t>& lnull = lhs.nulls();
  const bool lnn = term.lhs_non_null;

  if (term.kind == TermKind::kIsNull) {
    const bool want_null = !term.negated;
    if (lnn) {
      // Proven non-NULL: IS NULL selects nothing, IS NOT NULL everything.
      ApplyPred(n, first, sel, [&](int64_t) { return !want_null; });
      return;
    }
    ApplyPred(n, first, sel,
              [&](int64_t i) { return (lnull[i] != 0) == want_null; });
    return;
  }

  if (term.kind == TermKind::kCmpColLit) {
    const Value& lit = term.literal;
    const StorageClass cls = ClassOf(lhs);
    if (lit.is_null()) {
      // Comparison with NULL is Unknown for every row.
      ApplyPred(n, first, sel, [](int64_t) { return false; });
      return;
    }
    const CmpOp op = term.op;
    if (cls == StorageClass::kGeneric) {
      ApplyPred(n, first, sel, [&](int64_t i) {
        return IsTrue(Value::Apply(op, lhs.GetValue(i), lit));
      });
      return;
    }
    if (cls == StorageClass::kInt) {
      const std::vector<int64_t>& data = lhs.ints();
      if (lit.is_int()) {
        const int64_t y = lit.int64();
        Apply1(n, first, lnn, lnull, sel, [&](int64_t i) {
          return CmpHolds(op, CompareInts(data[i], y));
        });
      } else if (lit.is_float()) {
        const double y = lit.float64();
        Apply1(n, first, lnn, lnull, sel, [&](int64_t i) {
          return CmpHolds(op, CompareDoubles(static_cast<double>(data[i]), y));
        });
      } else {  // string vs numeric: incomparable -> Unknown
        ApplyPred(n, first, sel, [](int64_t) { return false; });
      }
      return;
    }
    if (cls == StorageClass::kDouble) {
      const std::vector<double>& data = lhs.doubles();
      if (lit.is_int() || lit.is_float()) {
        const double y = *lit.AsDouble();
        Apply1(n, first, lnn, lnull, sel, [&](int64_t i) {
          return CmpHolds(op, CompareDoubles(data[i], y));
        });
      } else {
        ApplyPred(n, first, sel, [](int64_t) { return false; });
      }
      return;
    }
    // kString storage.
    const std::vector<std::string>& data = lhs.strings();
    if (lit.is_string()) {
      const std::string& y = lit.string();
      Apply1(n, first, lnn, lnull, sel, [&](int64_t i) {
        return CmpHolds(op, data[i].compare(y));
      });
    } else {
      ApplyPred(n, first, sel, [](int64_t) { return false; });
    }
    return;
  }

  // kCmpColCol.
  const ColumnVector& rhs = batch.column(term.rhs);
  const std::vector<uint8_t>& rnull = rhs.nulls();
  const bool rnn = term.rhs_non_null;
  const CmpOp op = term.op;
  const StorageClass lcls = ClassOf(lhs);
  const StorageClass rcls = ClassOf(rhs);
  if (lcls == StorageClass::kGeneric || rcls == StorageClass::kGeneric) {
    ApplyPred(n, first, sel, [&](int64_t i) {
      return IsTrue(Value::Apply(op, lhs.GetValue(i), rhs.GetValue(i)));
    });
    return;
  }
  if (lcls == StorageClass::kInt && rcls == StorageClass::kInt) {
    const std::vector<int64_t>& a = lhs.ints();
    const std::vector<int64_t>& b = rhs.ints();
    Apply2(n, first, lnn, rnn, lnull, rnull, sel, [&](int64_t i) {
      return CmpHolds(op, CompareInts(a[i], b[i]));
    });
    return;
  }
  if (lcls == StorageClass::kString && rcls == StorageClass::kString) {
    const std::vector<std::string>& a = lhs.strings();
    const std::vector<std::string>& b = rhs.strings();
    Apply2(n, first, lnn, rnn, lnull, rnull, sel, [&](int64_t i) {
      return CmpHolds(op, a[i].compare(b[i]));
    });
    return;
  }
  if (lcls == StorageClass::kString || rcls == StorageClass::kString) {
    // string vs numeric: incomparable for every row.
    ApplyPred(n, first, sel, [](int64_t) { return false; });
    return;
  }
  // Mixed numeric (at least one double): compare through doubles.
  Apply2(n, first, lnn, rnn, lnull, rnull, sel, [&](int64_t i) {
    const double x = lcls == StorageClass::kInt
                         ? static_cast<double>(lhs.ints()[i])
                         : lhs.doubles()[i];
    const double y = rcls == StorageClass::kInt
                         ? static_cast<double>(rhs.ints()[i])
                         : rhs.doubles()[i];
    return CmpHolds(op, CompareDoubles(x, y));
  });
}

std::vector<int> VectorizedPredicate::used_columns() const {
  std::vector<int> cols;
  for (const Term& term : terms_) {
    cols.push_back(term.lhs);
    if (term.kind == TermKind::kCmpColCol) cols.push_back(term.rhs);
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  return cols;
}

void VectorizedPredicate::Select(const RowBatch& batch,
                                 std::vector<int32_t>* sel) const {
  const int64_t n = batch.num_rows();
  if (terms_.empty()) {
    sel->clear();
    sel->reserve(n);
    for (int64_t i = 0; i < n; ++i) sel->push_back(static_cast<int32_t>(i));
    return;
  }
  bool first = true;
  for (const Term& term : terms_) {
    SelectTerm(batch, term, first, sel);
    first = false;
    if (sel->empty()) return;
  }
}

}  // namespace nestra
