#ifndef NESTRA_EXEC_DISTINCT_H_
#define NESTRA_EXEC_DISTINCT_H_

#include <unordered_set>
#include <vector>

#include "common/hash_key.h"
#include "exec/exec_node.h"

namespace nestra {

/// \brief Duplicate elimination over full rows. Equality follows the SQL
/// comparator (NULLs deduplicate like SELECT DISTINCT, and an int64 value
/// deduplicates against an equal float64 value just as `=` equates them).
class DistinctNode final : public ExecNode {
 public:
  explicit DistinctNode(ExecNodePtr child) : child_(std::move(child)) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "Distinct"; }
  PipelineRole role() const override {
    return PipelineRole::kSerialStreaming;
  }
  std::vector<ExecNode*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override {
    seen_.clear();
    return child_->Open();
  }
  Status NextImpl(Row* out, bool* eof) override;
  void CloseImpl() override {
    seen_.clear();
    child_->Close();
  }

 private:
  ExecNodePtr child_;
  std::unordered_set<Row, SqlRowHash, SqlRowEq> seen_;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_DISTINCT_H_
