#ifndef NESTRA_EXEC_DISTINCT_H_
#define NESTRA_EXEC_DISTINCT_H_

#include <unordered_set>
#include <vector>

#include "exec/exec_node.h"

namespace nestra {

/// \brief Duplicate elimination over full rows (deep equality, so NULLs
/// deduplicate like SQL's SELECT DISTINCT).
class DistinctNode final : public ExecNode {
 public:
  explicit DistinctNode(ExecNodePtr child) : child_(std::move(child)) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  Status Open() override {
    seen_.clear();
    return child_->Open();
  }
  Status Next(Row* out, bool* eof) override;
  void Close() override {
    seen_.clear();
    child_->Close();
  }
  std::string name() const override { return "Distinct"; }

 private:
  struct RowHash {
    size_t operator()(const Row& r) const {
      size_t h = 0xcbf29ce484222325ULL;
      for (const Value& v : r.values()) {
        h ^= v.Hash();
        h *= 0x100000001b3ULL;
      }
      return h;
    }
  };

  ExecNodePtr child_;
  std::unordered_set<Row, RowHash> seen_;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_DISTINCT_H_
