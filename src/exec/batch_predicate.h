#ifndef NESTRA_EXEC_BATCH_PREDICATE_H_
#define NESTRA_EXEC_BATCH_PREDICATE_H_

#include <cstdint>
#include <vector>

#include "common/row_batch.h"
#include "common/schema.h"
#include "common/value.h"
#include "expr/expr.h"

namespace nestra {

/// \brief A predicate compiled to column-at-a-time kernels over a RowBatch.
///
/// Covers the filter shapes the planner actually produces on hot paths —
/// conjunctions of comparisons (column vs column / column vs literal) and
/// IS [NOT] NULL tests. Anything else (OR, NOT, arithmetic, nested
/// subexpressions) fails to compile and the caller falls back to the
/// row-at-a-time BoundPredicate, so semantics never fork: each kernel
/// reproduces Value::Apply exactly, including three-valued logic (NULL or
/// string-vs-numeric comparisons are Unknown → row dropped) and the
/// double-promotion rules for mixed numeric comparisons.
class VectorizedPredicate {
 public:
  VectorizedPredicate() = default;

  /// Compiles `expr` against `schema`. Returns false when some
  /// subexpression has no vectorized kernel; `*out` is then unusable.
  /// A null `expr` compiles to "TRUE" (every row selected).
  static bool Compile(const Expr* expr, const Schema& schema,
                      VectorizedPredicate* out);

  /// Proven-2VL variant: `non_null_cols[i]` asserts column `i` can never
  /// hold NULL (statically proven by the caller — see
  /// PropertyAnalyzer / Catalog::ProvenNotNull). Terms over proven columns
  /// select kernels without per-value NULL checks, and IS [NOT] NULL over
  /// a proven column degenerates to select-none / select-all. Bit-identical
  /// to the 3VL kernels whenever the proofs hold.
  static bool Compile(const Expr* expr, const Schema& schema,
                      const std::vector<bool>& non_null_cols,
                      VectorizedPredicate* out);

  /// Fills `sel` with the indices (ascending) of the rows of `batch` for
  /// which the predicate is true.
  void Select(const RowBatch& batch, std::vector<int32_t>* sel) const;

  /// Column indices the compiled terms read, ascending and deduplicated.
  /// Select only touches these columns, so a caller that owns the batch may
  /// leave every other column empty (late materialization).
  std::vector<int> used_columns() const;

 private:
  enum class TermKind { kCmpColCol, kCmpColLit, kIsNull };

  struct Term {
    TermKind kind = TermKind::kCmpColLit;
    CmpOp op = CmpOp::kEq;
    int lhs = -1;        // column index
    int rhs = -1;        // column index (kCmpColCol)
    Value literal;       // kCmpColLit
    bool negated = false;  // kIsNull: IS NOT NULL
    // Proven non-NULL operands (2VL compile): the kernel skips the
    // corresponding NULL load entirely.
    bool lhs_non_null = false;
    bool rhs_non_null = false;
  };

  void SelectTerm(const RowBatch& batch, const Term& term, bool first,
                  std::vector<int32_t>* sel) const;

  std::vector<Term> terms_;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_BATCH_PREDICATE_H_
