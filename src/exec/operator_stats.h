#ifndef NESTRA_EXEC_OPERATOR_STATS_H_
#define NESTRA_EXEC_OPERATOR_STATS_H_

#include <cstdint>

namespace nestra {

/// \brief Paper phase an operator is attributed to when profiling.
///
/// The paper's evaluation (§5.2) reports "processing time" — nest plus
/// linking selection — separately from the unnesting joins and the final
/// output pass. The NRA executor tags every operator it builds with one of
/// these so the §5.2 split falls out of any profiled run.
enum class QueryPhase {
  kUnattributed = 0,
  kUnnestJoin,        ///< base-relation eval + top-down outer joins (§4.1)
  kNest,              ///< group formation: Nest / the fused pipeline's sort
  kLinkingSelection,  ///< linking-predicate evaluation, incl. the fused pass
  kPostProcessing,    ///< root finish: group-by / order-by / distinct / limit
};

/// Stable lower-case label ("unnest-join", "nest", ...), used by both the
/// EXPLAIN ANALYZE renderer and the JSON profile sink.
const char* QueryPhaseLabel(QueryPhase phase);

/// \brief Per-operator counters embedded in every ExecNode.
///
/// The call/row counters are always maintained — they are a couple of
/// increments per row and never read the clock. The wall-time and byte
/// fields are only filled in when profiling is enabled on the node
/// (ExecNode::EnableTimingRecursive), so `NraOptions::profile = false`
/// costs nothing measurable.
struct OperatorStats {
  // Always on.
  int64_t open_calls = 0;
  int64_t next_calls = 0;
  int64_t rows_out = 0;
  int64_t batches_out = 0;  ///< non-empty RowBatches produced via NextBatch
  int64_t adapter_batches = 0;  ///< batches_out filled by the row adapter
                                ///< (operator has no native NextBatchImpl)

  // Timing (profiling only). Inclusive of children — the renderers subtract
  // child time to report exclusive ("self") time.
  double open_seconds = 0;
  double next_seconds = 0;

  // Operator-specific extras; zero where not applicable.
  int64_t build_rows = 0;   ///< hash-join build-side rows inserted
  int64_t probe_rows = 0;   ///< hash-/index-join probe count
  int64_t sort_rows = 0;    ///< rows physically sorted
  int64_t sort_bytes = 0;   ///< approximate sorted payload (profiling only)
  int64_t io_hits = 0;      ///< IoSim buffer-pool hits charged by this node
  int64_t io_seq_misses = 0;
  int64_t io_random_misses = 0;

  // Memory accounting (always on — plain integer adds at materialization
  // boundaries, no clocks; see src/common/memory_tracker.h). Logical bytes
  // of state this operator holds materialized right now / at its peak.
  int64_t mem_bytes = 0;
  int64_t peak_mem_bytes = 0;

  double total_seconds() const { return open_seconds + next_seconds; }
};

}  // namespace nestra

#endif  // NESTRA_EXEC_OPERATOR_STATS_H_
