#ifndef NESTRA_EXEC_SORT_H_
#define NESTRA_EXEC_SORT_H_

#include <string>
#include <vector>

#include "exec/exec_node.h"

namespace nestra {

/// \brief One ORDER BY key: column name + direction. NULLs sort first in
/// ascending order (per Value::TotalOrderCompare), last in descending.
struct SortKey {
  std::string column;
  bool ascending = true;
};

/// \brief Pipeline-breaking multi-key sort. This is the operator the
/// sort-based nest rides on: the "only the deepest nesting involves true
/// physical reordering" optimization (§4.2.1) is one SortNode for all levels.
///
/// With `num_threads > 1` the materialized input is sorted by a parallel
/// stable merge sort; the stable order is unique, so the result is
/// element-for-element identical to the serial sort.
class SortNode final : public ExecNode {
 public:
  /// With `vectorized` the input is drained via NextBatch, so batch-capable
  /// children run columnar; the materialized rows are identical either way.
  SortNode(ExecNodePtr child, std::vector<SortKey> keys, int num_threads = 1,
           bool vectorized = false)
      : child_(std::move(child)),
        keys_(std::move(keys)),
        num_threads_(num_threads < 1 ? 1 : num_threads),
        vectorized_(vectorized) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "Sort"; }
  PipelineRole role() const override { return PipelineRole::kBreaker; }
  std::vector<ExecNode*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  Status NextBatchImpl(RowBatch* out, bool* eof) override;
  void CloseImpl() override;

 private:
  ExecNodePtr child_;
  std::vector<SortKey> keys_;
  int num_threads_ = 1;
  bool vectorized_ = false;
  std::vector<int> key_indices_;
  std::vector<bool> key_asc_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  int64_t charged_bytes_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_SORT_H_
