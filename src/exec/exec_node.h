#ifndef NESTRA_EXEC_EXEC_NODE_H_
#define NESTRA_EXEC_EXEC_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/table.h"
#include "exec/operator_stats.h"

namespace nestra {

/// \brief Volcano-style pull operator.
///
/// Protocol: `Open()` once (binds expressions, builds hash tables, sorts —
/// all pipeline-breaking work), then `Next(&row, &eof)` until `eof`, then
/// `Close()`. Nodes own their children. Rows flow by value (moved where
/// possible); pipelined stages never materialize, which is what makes the
/// paper's fused nest+linking-selection (§4.2.2) a genuine single pass.
///
/// The public Open/Next/Close entry points are non-virtual wrappers that
/// maintain the embedded OperatorStats block and delegate to the protected
/// `*Impl` virtuals subclasses implement. Row/call counters are always on;
/// the steady_clock timers only run after EnableTimingRecursive() (i.e.
/// under `NraOptions::profile`), so unprofiled queries never touch the
/// clock on the per-row path.
class ExecNode {
 public:
  virtual ~ExecNode() = default;

  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  /// Schema of the rows this node produces. Valid after construction.
  virtual const Schema& output_schema() const = 0;

  /// Operator name for EXPLAIN-style debugging.
  virtual std::string name() const = 0;

  /// Optional one-line annotation (scan target, fused group counts, ...)
  /// rendered next to the name by EXPLAIN ANALYZE.
  virtual std::string detail() const { return ""; }

  /// Child operators, left to right. Leaves return {}.
  virtual std::vector<ExecNode*> children() const { return {}; }

  Status Open();

  /// Produces the next row. Sets `*eof` to true (leaving `*out` untouched)
  /// when the stream is exhausted.
  Status Next(Row* out, bool* eof);

  void Close();

  const OperatorStats& stats() const { return stats_; }
  QueryPhase phase() const { return phase_; }
  void set_phase(QueryPhase phase) { phase_ = phase; }

  /// Tags this node and every descendant that is still kUnattributed.
  /// Pre-tagged subtrees (e.g. the sort inside the fused pipeline, which
  /// belongs to the nest phase) keep their more specific phase.
  void SetPhaseRecursive(QueryPhase phase);

  /// Turns on the wall-clock timers on this node and every descendant.
  void EnableTimingRecursive();

 protected:
  ExecNode() = default;

  virtual Status OpenImpl() = 0;
  virtual Status NextImpl(Row* out, bool* eof) = 0;
  virtual void CloseImpl() = 0;

  OperatorStats stats_;
  bool timing_ = false;

 private:
  QueryPhase phase_ = QueryPhase::kUnattributed;
};

using ExecNodePtr = std::unique_ptr<ExecNode>;

/// Drains a node (Open/Next*/Close) into a materialized table.
Result<Table> CollectTable(ExecNode* node);

/// \brief Leaf node replaying an owned, already-materialized table.
/// Used wherever an intermediate result re-enters the pipeline.
class TableSourceNode final : public ExecNode {
 public:
  explicit TableSourceNode(Table table) : table_(std::move(table)) {}

  const Schema& output_schema() const override { return table_.schema(); }
  std::string name() const override { return "TableSource"; }

 protected:
  Status OpenImpl() override {
    pos_ = 0;
    return Status::OK();
  }
  Status NextImpl(Row* out, bool* eof) override;
  void CloseImpl() override {}

 private:
  Table table_;
  int64_t pos_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_EXEC_NODE_H_
