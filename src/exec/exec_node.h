#ifndef NESTRA_EXEC_EXEC_NODE_H_
#define NESTRA_EXEC_EXEC_NODE_H_

#include <memory>
#include <string>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/table.h"

namespace nestra {

/// \brief Volcano-style pull operator.
///
/// Protocol: `Open()` once (binds expressions, builds hash tables, sorts —
/// all pipeline-breaking work), then `Next(&row, &eof)` until `eof`, then
/// `Close()`. Nodes own their children. Rows flow by value (moved where
/// possible); pipelined stages never materialize, which is what makes the
/// paper's fused nest+linking-selection (§4.2.2) a genuine single pass.
class ExecNode {
 public:
  virtual ~ExecNode() = default;

  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  /// Schema of the rows this node produces. Valid after construction.
  virtual const Schema& output_schema() const = 0;

  virtual Status Open() = 0;

  /// Produces the next row. Sets `*eof` to true (leaving `*out` untouched)
  /// when the stream is exhausted.
  virtual Status Next(Row* out, bool* eof) = 0;

  virtual void Close() = 0;

  /// Operator name for EXPLAIN-style debugging.
  virtual std::string name() const = 0;

 protected:
  ExecNode() = default;
};

using ExecNodePtr = std::unique_ptr<ExecNode>;

/// Drains a node (Open/Next*/Close) into a materialized table.
Result<Table> CollectTable(ExecNode* node);

/// \brief Leaf node replaying an owned, already-materialized table.
/// Used wherever an intermediate result re-enters the pipeline.
class TableSourceNode final : public ExecNode {
 public:
  explicit TableSourceNode(Table table) : table_(std::move(table)) {}

  const Schema& output_schema() const override { return table_.schema(); }
  Status Open() override {
    pos_ = 0;
    return Status::OK();
  }
  Status Next(Row* out, bool* eof) override;
  void Close() override {}
  std::string name() const override { return "TableSource"; }

 private:
  Table table_;
  int64_t pos_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_EXEC_NODE_H_
