#ifndef NESTRA_EXEC_EXEC_NODE_H_
#define NESTRA_EXEC_EXEC_NODE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/row.h"
#include "common/row_batch.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/table.h"
#include "exec/operator_stats.h"

namespace nestra {

/// \brief Pipeline-scheduling classification of an operator (DESIGN.md
/// §11). The push-based executor decomposes a plan into source→streaming→
/// sink pipelines; an operator's role decides where pipeline boundaries
/// fall when the stage DAG is built:
///
///  * kSource — emits rows from storage or owned materialized state
///    (Scan, TableSource); heads a pipeline.
///  * kStreaming — transforms rows/batches as they flow (Filter, Project);
///    rides inside a pipeline.
///  * kSerialStreaming — streaming, but carries cross-row state that pins
///    it to one in-order lane (Distinct, Limit, the fused nest+select
///    evaluator).
///  * kBreaker — must consume its entire input before emitting its first
///    row (Sort, HashJoin build, Aggregate, the join fallbacks); ends a
///    pipeline and becomes a sink with explicit dependencies.
enum class PipelineRole { kSource, kStreaming, kSerialStreaming, kBreaker };

const char* PipelineRoleLabel(PipelineRole role);

/// \brief Volcano-style pull operator.
///
/// Protocol: `Open()` once (binds expressions, builds hash tables, sorts —
/// all pipeline-breaking work), then `Next(&row, &eof)` until `eof`, then
/// `Close()`. Nodes own their children. Rows flow by value (moved where
/// possible); pipelined stages never materialize, which is what makes the
/// paper's fused nest+linking-selection (§4.2.2) a genuine single pass.
///
/// The public Open/Next/Close entry points are non-virtual wrappers that
/// maintain the embedded OperatorStats block and delegate to the protected
/// `*Impl` virtuals subclasses implement. Row/call counters are always on;
/// the steady_clock timers only run after EnableTimingRecursive() (i.e.
/// under `NraOptions::profile`), so unprofiled queries never touch the
/// clock on the per-row path.
class ExecNode {
 public:
  virtual ~ExecNode() = default;

  ExecNode(const ExecNode&) = delete;
  ExecNode& operator=(const ExecNode&) = delete;

  /// Schema of the rows this node produces. Valid after construction.
  virtual const Schema& output_schema() const = 0;

  /// Operator name for EXPLAIN-style debugging.
  virtual std::string name() const = 0;

  /// Optional one-line annotation (scan target, fused group counts, ...)
  /// rendered next to the name by EXPLAIN ANALYZE.
  virtual std::string detail() const { return ""; }

  /// Child operators, left to right. Leaves return {}.
  virtual std::vector<ExecNode*> children() const { return {}; }

  /// Pipeline-scheduling role (see PipelineRole above). Pure row/batch
  /// transforms stream by default; sources, breakers, and order-dependent
  /// streamers override.
  virtual PipelineRole role() const { return PipelineRole::kStreaming; }

  Status Open();

  /// Produces the next row. Sets `*eof` to true (leaving `*out` untouched)
  /// when the stream is exhausted.
  Status Next(Row* out, bool* eof);

  /// Produces the next batch of rows (vectorized mode). `*out` is reset to
  /// this node's output schema and filled with up to ~RowBatch's capacity
  /// rows (operators finishing a unit of work — e.g. a join completing one
  /// probe row's matches — may emit slightly more). `*eof` is set exactly
  /// when the batch comes back empty; a stream's batches are all non-empty
  /// until the final empty one. Like Next(), this maintains OperatorStats.
  /// Operators without a native NextBatchImpl run through a row-at-a-time
  /// adapter, so the two protocols are freely interleavable per node edge
  /// (but pick one per edge: both consume the same underlying stream).
  Status NextBatch(RowBatch* out, bool* eof);

  void Close();

  const OperatorStats& stats() const { return stats_; }
  QueryPhase phase() const { return phase_; }
  void set_phase(QueryPhase phase) { phase_ = phase; }

  /// Tags this node and every descendant that is still kUnattributed.
  /// Pre-tagged subtrees (e.g. the sort inside the fused pipeline, which
  /// belongs to the nest phase) keep their more specific phase.
  void SetPhaseRecursive(QueryPhase phase);

  /// Turns on the wall-clock timers on this node and every descendant.
  void EnableTimingRecursive();

 protected:
  ExecNode() = default;

  virtual Status OpenImpl() = 0;
  virtual Status NextImpl(Row* out, bool* eof) = 0;
  virtual void CloseImpl() = 0;

  /// Default adapter: fills `out` by looping NextImpl. Operators with a
  /// profitable columnar form override this (scan, filter, sort, project,
  /// hash join, fused nest+select).
  virtual Status NextBatchImpl(RowBatch* out, bool* eof);

  OperatorStats stats_;
  bool timing_ = false;

 private:
  // Folds one emitted batch's column-vector footprint into
  // peak_mem_bytes (always on; see OperatorStats).
  void RecordBatchBytes(const RowBatch& batch);

  QueryPhase phase_ = QueryPhase::kUnattributed;
  // The row adapter must not call NextImpl again after it reported eof
  // (operators are not required to be re-callable past the end).
  bool adapter_saw_eof_ = false;
};

using ExecNodePtr = std::unique_ptr<ExecNode>;

/// Drains a node (Open/Next*/Close) into a materialized table. With
/// `vectorized` the drain runs over NextBatch instead; the resulting table
/// is cell-for-cell identical either way. When `bytes` is non-null it
/// accumulates the logical byte footprint (RowBytes) of the collected rows
/// during the existing drain loop — no extra pass.
Result<Table> CollectTable(ExecNode* node, bool vectorized = false,
                           int64_t* bytes = nullptr);

/// Appends the full output of an already-opened node to `rows`, identical
/// rows in identical order for both engines. With `vectorized` the drain
/// runs over NextBatch, and a TableSourceNode child is drained by moving
/// its rows out in bulk instead of round-tripping them through a batch.
/// Used by materializing operators (hash join build/probe, sort). When
/// `bytes` is non-null it accumulates the logical byte footprint of the
/// rows appended by this call (identical for both engines — it is a pure
/// function of row content).
Status DrainAllRows(ExecNode* node, bool vectorized, std::vector<Row>* rows,
                    int64_t* bytes = nullptr);

/// \brief Leaf node replaying an owned, already-materialized table.
/// Used wherever an intermediate result re-enters the pipeline.
class TableSourceNode final : public ExecNode {
 public:
  explicit TableSourceNode(Table table) : table_(std::move(table)) {}

  const Schema& output_schema() const override { return table_.schema(); }
  std::string name() const override { return "TableSource"; }
  PipelineRole role() const override { return PipelineRole::kSource; }

  /// Moves the not-yet-emitted rows out in one bulk transfer, as if the
  /// caller had drained them one call at a time (rows_out advances the
  /// same way). Returns false — leaving the node untouched — when rows
  /// were already emitted through Next/NextBatch. One-shot consumers that
  /// materialize the whole input anyway (hash join build/probe) use this
  /// to skip a per-row deep copy; afterwards the node cannot be reopened
  /// (the rows are gone — OpenImpl fails loudly rather than silently
  /// replaying an emptied table, the stale-stats-on-reopen bug class).
  bool TakeAllRows(std::vector<Row>* out) {
    if (pos_ != 0 || taken_) return false;
    taken_ = true;
    stats_.rows_out += table_.num_rows();
    if (out->empty()) {
      *out = std::move(table_.rows());
    } else {
      for (Row& row : table_.rows()) out->push_back(std::move(row));
    }
    table_.rows().clear();
    // The rows (and their byte charge) now belong to the consumer, which
    // accounts them through its own drain; releasing here keeps every byte
    // charged exactly once.
    ReleaseCharge();
    return true;
  }

 protected:
  /// Charges the table's logical bytes to the current query tracker (and
  /// fails with ResourceExhausted past the soft limit). A reopen after
  /// TakeAllRows fails loudly — the rows are gone and the replay would be
  /// silently empty.
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  Status NextBatchImpl(RowBatch* out, bool* eof) override;
  void CloseImpl() override;

 private:
  void ReleaseCharge();

  Table table_;
  int64_t pos_ = 0;
  int64_t charged_bytes_ = 0;
  bool taken_ = false;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_EXEC_NODE_H_
