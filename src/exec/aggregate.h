#ifndef NESTRA_EXEC_AGGREGATE_H_
#define NESTRA_EXEC_AGGREGATE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash_key.h"
#include "exec/exec_node.h"

namespace nestra {

/// \brief Aggregate functions supported by the hash aggregation node.
///
/// COUNT(col) ignores NULLs; COUNT(*) counts rows; MIN/MAX/SUM/AVG return
/// NULL over an all-NULL (or empty) input, matching SQL. These are what the
/// count-based and max-based rewrite baselines of Section 2 need.
enum class AggFunc { kCountStar, kCount, kSum, kMin, kMax, kAvg };

struct AggSpec {
  AggFunc func;
  std::string column;       // ignored for kCountStar
  std::string output_name;  // name of the produced field
};

/// \brief Hash group-by aggregation. Grouping follows the SQL comparator
/// (common/hash_key.h): NULL group keys form a single group and numerically
/// equal int64/float64 keys group together (SQL GROUP BY semantics).
///
/// With an empty `group_by` this is a scalar aggregate producing exactly one
/// row even for empty input (COUNT(*) = 0 etc.), which is exactly the
/// behaviour the COUNT-rewrite baseline depends on.
class AggregateNode final : public ExecNode {
 public:
  AggregateNode(ExecNodePtr child, std::vector<std::string> group_by,
                std::vector<AggSpec> aggs);

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "Aggregate"; }
  PipelineRole role() const override { return PipelineRole::kBreaker; }
  std::vector<ExecNode*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  void CloseImpl() override;

 private:
  struct AggState {
    int64_t count = 0;        // rows (kCountStar) or non-null inputs
    double sum = 0;           // numeric running sum
    bool sum_is_int = true;   // emit int64 when all inputs were ints
    Value extreme;            // running MIN/MAX (NULL until first input)
  };

  void Accumulate(std::vector<AggState>* states, const Row& row) const;
  Row Finalize(const std::vector<Value>& key,
               const std::vector<AggState>& states) const;

  ExecNodePtr child_;
  std::vector<std::string> group_by_;
  std::vector<AggSpec> aggs_;

  Schema schema_;
  std::vector<int> group_idx_;
  std::vector<int> agg_idx_;  // -1 for COUNT(*)

  std::vector<Row> results_;
  size_t pos_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_AGGREGATE_H_
