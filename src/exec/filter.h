#ifndef NESTRA_EXEC_FILTER_H_
#define NESTRA_EXEC_FILTER_H_

#include <cstdint>
#include <vector>

#include "exec/batch_predicate.h"
#include "exec/exec_node.h"
#include "expr/evaluator.h"
#include "expr/expr.h"

namespace nestra {

/// \brief Streams rows of the child for which the predicate is definitely
/// TRUE (SQL WHERE semantics: UNKNOWN filters out).
class FilterNode final : public ExecNode {
 public:
  FilterNode(ExecNodePtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  const Schema& output_schema() const override {
    return child_->output_schema();
  }
  std::string name() const override { return "Filter"; }
  std::vector<ExecNode*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  Status NextBatchImpl(RowBatch* out, bool* eof) override;
  void CloseImpl() override { child_->Close(); }

 private:
  ExecNodePtr child_;
  ExprPtr predicate_;
  BoundPredicate bound_;
  // Vectorized path: compiled kernels plus a scratch input batch and
  // selection vector, reused across NextBatch calls.
  bool vectorizable_ = false;
  VectorizedPredicate vectorized_;
  RowBatch input_;
  std::vector<int32_t> sel_;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_FILTER_H_
