#ifndef NESTRA_EXEC_SET_OPS_H_
#define NESTRA_EXEC_SET_OPS_H_

#include "common/table.h"

namespace nestra {

/// \brief Bag/set combinators over materialized tables, with SQL set
/// semantics: UNION / INTERSECT / EXCEPT deduplicate (NULLs compare equal
/// for this purpose, as in SQL's set operations); UNION ALL concatenates.
///
/// The inputs must have the same arity and field types (names may differ;
/// the left input's schema names the result).

Result<Table> UnionAll(Table left, const Table& right);
Result<Table> UnionDistinct(const Table& left, const Table& right);
Result<Table> Intersect(const Table& left, const Table& right);
Result<Table> Except(const Table& left, const Table& right);

/// Schema compatibility check shared by the combinators.
Status CheckSetOpCompatible(const Schema& left, const Schema& right);

}  // namespace nestra

#endif  // NESTRA_EXEC_SET_OPS_H_
