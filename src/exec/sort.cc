#include "exec/sort.h"

#include <algorithm>

#include "common/memory_tracker.h"
#include "common/parallel_sort.h"

namespace nestra {

namespace {
// Rough in-memory footprint of a row: variant header per value plus string
// payload. Only computed when profiling is on (it walks every value).
int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes = 0;
  for (const Value& v : row.values()) {
    bytes += static_cast<int64_t>(sizeof(Value));
    if (v.is_string()) bytes += static_cast<int64_t>(v.string().size());
  }
  return bytes;
}
}  // namespace

Status SortNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  key_indices_.clear();
  key_asc_.clear();
  for (const SortKey& k : keys_) {
    NESTRA_ASSIGN_OR_RETURN(int idx, child_->output_schema().Resolve(k.column));
    key_indices_.push_back(idx);
    key_asc_.push_back(k.ascending);
  }
  rows_.clear();
  pos_ = 0;
  charged_bytes_ = 0;
  NESTRA_RETURN_NOT_OK(
      DrainAllRows(child_.get(), vectorized_, &rows_, &charged_bytes_));
  // Always-on byte accounting for the sort buffer: the drain already
  // computed the logical footprint, so this is just bookkeeping.
  stats_.mem_bytes = charged_bytes_;
  stats_.peak_mem_bytes = charged_bytes_;
  if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
    NESTRA_RETURN_NOT_OK(mem->Charge(charged_bytes_));
  }
  // Stable sort keeps input order within equal keys, which makes nested
  // groups deterministic for tests — and makes the parallel sort's output
  // identical to the serial one.
  ParallelStableSort(
      &rows_,
      [this](const Row& a, const Row& b) {
        for (size_t i = 0; i < key_indices_.size(); ++i) {
          const int c =
              Value::TotalOrderCompare(a[key_indices_[i]], b[key_indices_[i]]);
          if (c != 0) return key_asc_[i] ? c < 0 : c > 0;
        }
        return false;
      },
      num_threads_);
  stats_.sort_rows += static_cast<int64_t>(rows_.size());
  if (timing_) {
    for (const Row& r : rows_) stats_.sort_bytes += ApproxRowBytes(r);
  }
  return Status::OK();
}

void SortNode::CloseImpl() {
  rows_.clear();
  if (charged_bytes_ != 0) {
    if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
      mem->Release(charged_bytes_);
    }
    charged_bytes_ = 0;
    stats_.mem_bytes = 0;
  }
  child_->Close();
}

Status SortNode::NextImpl(Row* out, bool* eof) {
  if (pos_ >= rows_.size()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = std::move(rows_[pos_++]);
  return Status::OK();
}

Status SortNode::NextBatchImpl(RowBatch* out, bool* eof) {
  size_t end = pos_ + static_cast<size_t>(RowBatch::kDefaultCapacity);
  if (end > rows_.size()) end = rows_.size();
  for (; pos_ < end; ++pos_) {
    out->AppendRow(std::move(rows_[pos_]));
  }
  *eof = out->empty();
  return Status::OK();
}

}  // namespace nestra
