#ifndef NESTRA_EXEC_PROJECT_H_
#define NESTRA_EXEC_PROJECT_H_

#include <string>
#include <vector>

#include "exec/exec_node.h"

namespace nestra {

/// \brief Column projection (and optional renaming). No expression
/// projection is needed anywhere in the paper's plans.
class ProjectNode final : public ExecNode {
 public:
  /// `columns` are resolved against the child schema (exact or unqualified).
  /// `output_names`, if non-empty, renames positionally and must match
  /// `columns` in length.
  ProjectNode(ExecNodePtr child, std::vector<std::string> columns,
              std::vector<std::string> output_names = {});

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "Project"; }
  std::vector<ExecNode*> children() const override { return {child_.get()}; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  Status NextBatchImpl(RowBatch* out, bool* eof) override;
  void CloseImpl() override { child_->Close(); }

 private:
  ExecNodePtr child_;
  std::vector<std::string> columns_;
  std::vector<std::string> output_names_;
  std::vector<int> indices_;
  Schema schema_;
  RowBatch input_;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_PROJECT_H_
