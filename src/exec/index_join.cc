#include "exec/index_join.h"

#include "storage/io_sim.h"

namespace nestra {

IndexJoinNode::IndexJoinNode(ExecNodePtr left, const Table* right_table,
                             std::string alias, const HashIndex* index,
                             std::string left_probe_column, JoinType join_type,
                             ExprPtr residual)
    : left_(std::move(left)),
      right_table_(right_table),
      right_schema_(alias.empty() ? right_table->schema()
                                  : right_table->schema().Qualify(alias)),
      index_(index),
      left_probe_column_(std::move(left_probe_column)),
      join_type_(join_type),
      residual_(std::move(residual)),
      alias_(std::move(alias)) {
  const Schema& ls = left_->output_schema();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
    std::vector<Field> fields = right_schema_.fields();
    if (join_type_ == JoinType::kLeftOuter) {
      for (Field& f : fields) f.nullable = true;
    }
    schema_ = Schema::Concat(ls, Schema(std::move(fields)));
  } else {
    schema_ = ls;
  }
}

Status IndexJoinNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(left_->Open());
  NESTRA_ASSIGN_OR_RETURN(left_probe_idx_,
                          left_->output_schema().Resolve(left_probe_column_));
  NESTRA_ASSIGN_OR_RETURN(
      bound_,
      BoundPredicate::Make(residual_.get(),
                           Schema::Concat(left_->output_schema(),
                                          right_schema_)));
  left_valid_ = false;
  probe_count_ = 0;
  return Status::OK();
}

Status IndexJoinNode::NextImpl(Row* out, bool* eof) {
  const int right_width = right_schema_.num_fields();
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      NESTRA_RETURN_NOT_OK(left_->Next(&left_row_, &left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
      left_valid_ = true;
      emitted_match_ = false;
      cand_pos_ = 0;
      ++probe_count_;
      candidates_ = &index_->Lookup(left_row_[left_probe_idx_]);
    }

    while (cand_pos_ < candidates_->size()) {
      const int64_t row_id = (*candidates_)[cand_pos_++];
      if (IoSim* sim = IoSim::Get()) {
        switch (sim->RandomRow(right_table_, row_id)) {
          case IoAccess::kHit:
            ++stats_.io_hits;
            break;
          case IoAccess::kRandomMiss:
            ++stats_.io_random_misses;
            break;
          case IoAccess::kSeqMiss:
            ++stats_.io_seq_misses;
            break;
          case IoAccess::kNone:
            break;
        }
      }
      const Row& right_row = right_table_->rows()[row_id];
      Row combined = Row::Concat(left_row_, right_row);
      if (!bound_.Matches(combined)) continue;
      emitted_match_ = true;
      switch (join_type_) {
        case JoinType::kInner:
        case JoinType::kLeftOuter:
          *out = std::move(combined);
          *eof = false;
          return Status::OK();
        case JoinType::kLeftSemi:
          *out = left_row_;
          *eof = false;
          left_valid_ = false;
          return Status::OK();
        case JoinType::kLeftAnti:
        case JoinType::kLeftAntiNullAware:
          cand_pos_ = candidates_->size();
          break;
      }
    }

    const bool matched = emitted_match_;
    const Row current = left_row_;
    left_valid_ = false;

    switch (join_type_) {
      case JoinType::kInner:
      case JoinType::kLeftSemi:
        break;
      case JoinType::kLeftOuter:
        if (!matched) {
          *out = Row::Concat(current, Row::Nulls(right_width));
          *eof = false;
          return Status::OK();
        }
        break;
      case JoinType::kLeftAnti:
      case JoinType::kLeftAntiNullAware:
        if (!matched) {
          *out = current;
          *eof = false;
          return Status::OK();
        }
        break;
    }
  }
}

}  // namespace nestra
