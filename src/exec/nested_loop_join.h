#ifndef NESTRA_EXEC_NESTED_LOOP_JOIN_H_
#define NESTRA_EXEC_NESTED_LOOP_JOIN_H_

#include <string>
#include <vector>

#include "exec/exec_node.h"
#include "exec/join_type.h"
#include "expr/evaluator.h"

namespace nestra {

/// \brief General theta join: materializes the right input and scans it per
/// left row. The workhorse of the nested-iteration baseline and the fallback
/// for conditions with no usable equality.
///
/// A null condition means a Cartesian product (for kInner/kLeftOuter) or
/// EXISTS/NOT-EXISTS-on-anything (for semi/anti).
class NestedLoopJoinNode final : public ExecNode {
 public:
  NestedLoopJoinNode(ExecNodePtr left, ExecNodePtr right, JoinType join_type,
                     ExprPtr condition);

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override {
    return std::string("NestedLoopJoin[") + JoinTypeToString(join_type_) + "]";
  }
  PipelineRole role() const override { return PipelineRole::kBreaker; }
  std::vector<ExecNode*> children() const override {
    return {left_.get(), right_.get()};
  }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  void CloseImpl() override;

 private:
  ExecNodePtr left_;
  ExecNodePtr right_;
  JoinType join_type_;
  ExprPtr condition_;

  Schema schema_;
  int right_width_ = 0;
  BoundPredicate bound_;

  std::vector<Row> right_rows_;
  Row left_row_;
  size_t right_pos_ = 0;
  bool left_valid_ = false;
  bool emitted_match_ = false;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_NESTED_LOOP_JOIN_H_
