#ifndef NESTRA_EXEC_INDEX_JOIN_H_
#define NESTRA_EXEC_INDEX_JOIN_H_

#include <string>
#include <vector>

#include "exec/exec_node.h"
#include "exec/join_type.h"
#include "expr/evaluator.h"
#include "storage/hash_index.h"

namespace nestra {

/// \brief Index nested-loop join: per left row, probes a hash index on one
/// column of a borrowed base table and post-filters candidates with the
/// residual condition.
///
/// This models the paper's description of the native approach: "lineitem is
/// accessed by index rowid", "the nested loop join is performed on partsupp
/// using the index on (ps_partkey, ps_suppkey)". Which index is probed is
/// the caller's choice (System A sometimes picks a single-column index and
/// post-filters, see Query 3a(b)); all remaining conditions belong in
/// `residual`.
class IndexJoinNode final : public ExecNode {
 public:
  IndexJoinNode(ExecNodePtr left, const Table* right_table, std::string alias,
                const HashIndex* index, std::string left_probe_column,
                JoinType join_type, ExprPtr residual);

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override {
    return std::string("IndexJoin[") + JoinTypeToString(join_type_) + "]";
  }
  PipelineRole role() const override { return PipelineRole::kBreaker; }
  std::string detail() const override { return alias_; }
  std::vector<ExecNode*> children() const override { return {left_.get()}; }

  /// Total index probes so far (bench counter).
  int64_t probe_count() const { return probe_count_; }

 protected:
  Status OpenImpl() override;
  Status NextImpl(Row* out, bool* eof) override;
  void CloseImpl() override {
    stats_.probe_rows = probe_count_;
    left_->Close();
  }

 private:
  ExecNodePtr left_;
  const Table* right_table_;
  Schema right_schema_;  // qualified
  const HashIndex* index_;
  std::string left_probe_column_;
  JoinType join_type_;
  ExprPtr residual_;
  std::string alias_;

  Schema schema_;
  int left_probe_idx_ = -1;
  BoundPredicate bound_;

  Row left_row_;
  const std::vector<int64_t>* candidates_ = nullptr;
  size_t cand_pos_ = 0;
  bool left_valid_ = false;
  bool emitted_match_ = false;
  int64_t probe_count_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_INDEX_JOIN_H_
