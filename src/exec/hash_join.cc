#include "exec/hash_join.h"

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace nestra {

HashJoinNode::HashJoinNode(ExecNodePtr left, ExecNodePtr right,
                           JoinType join_type, std::vector<EquiPair> equi,
                           ExprPtr residual, int num_threads, bool vectorized)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_type_(join_type),
      equi_(std::move(equi)),
      residual_(std::move(residual)),
      num_threads_(num_threads < 1 ? 1 : num_threads) {
  vectorized_ = vectorized;
  // Schema is known at construction: joins never rename.
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
    Schema padded = rs;
    if (join_type_ == JoinType::kLeftOuter) {
      // Outer padding makes every right field nullable.
      std::vector<Field> fields = rs.fields();
      for (Field& f : fields) f.nullable = true;
      padded = Schema(std::move(fields));
    }
    schema_ = Schema::Concat(ls, padded);
  } else {
    schema_ = ls;
  }
  right_width_ = rs.num_fields();
}

Status HashJoinNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(left_->Open());
  NESTRA_RETURN_NOT_OK(right_->Open());

  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  left_key_idx_.clear();
  right_key_idx_.clear();
  for (const EquiPair& p : equi_) {
    NESTRA_ASSIGN_OR_RETURN(int li, ls.Resolve(p.left));
    NESTRA_ASSIGN_OR_RETURN(int ri, rs.Resolve(p.right));
    left_key_idx_.push_back(li);
    right_key_idx_.push_back(ri);
  }
  // Equi pairs come in matched (left, right) columns.
  NESTRA_DCHECK(left_key_idx_.size() == right_key_idx_.size());
  NESTRA_ASSIGN_OR_RETURN(
      bound_residual_,
      BoundPredicate::Make(residual_.get(), Schema::Concat(ls, rs)));

  NESTRA_RETURN_NOT_OK(BuildTable());

  pending_.clear();
  pending_pos_ = 0;
  left_done_ = false;
  probe_count_ = 0;
  probe_batch_.Clear();
  probe_pos_ = 0;
  if (num_threads_ > 1) {
    NESTRA_RETURN_NOT_OK(ParallelProbe());
  }
  return Status::OK();
}

Status HashJoinNode::BuildTable() {
  build_has_null_key_ = false;
  build_rows_ = 0;
  flat_built_ = false;

  // Drain the child serially (Next/NextBatch is a serial protocol), then
  // hash and partition the materialized rows in parallel.
  std::vector<Row> rows;
  NESTRA_RETURN_NOT_OK(DrainAllRows(right_.get(), vectorized_, &rows));
  build_rows_ = static_cast<int64_t>(rows.size());

  const int64_t n = build_rows_;
  const size_t num_parts = num_threads_ > 1 ? static_cast<size_t>(num_threads_)
                                            : size_t{1};
  partitions_.assign(num_parts, Buckets{});
  if (n == 0) return Status::OK();

  std::vector<size_t> hashes(static_cast<size_t>(n));
  std::vector<uint8_t> has_null(static_cast<size_t>(n), 0);
  ParallelForMorsels(n, num_threads_, [&](int64_t, int64_t begin,
                                          int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const Row& r = rows[static_cast<size_t>(i)];
      bool null_key = false;
      for (const int idx : right_key_idx_) {
        if (r[idx].is_null()) null_key = true;
      }
      has_null[static_cast<size_t>(i)] = null_key ? 1 : 0;
      if (!null_key) {
        hashes[static_cast<size_t>(i)] = SqlKeyHashOn(r, right_key_idx_);
      }
    }
  });
  for (int64_t i = 0; i < n; ++i) {
    // A NULL build key can never satisfy an equality; remember it for the
    // null-aware antijoin, drop it otherwise.
    if (has_null[static_cast<size_t>(i)] != 0) build_has_null_key_ = true;
  }

  if (vectorized_ && num_threads_ == 1) {
    // Serial vectorized build: index chains over the materialized rows.
    // partitions_ would pay three allocations per insert (map node, key
    // vector, bucket vector); the chains pay none.
    flat_built_ = true;
    flat_rows_ = std::move(rows);
    flat_hash_ = std::move(hashes);
    size_t num_buckets = 16;
    while (num_buckets < static_cast<size_t>(n) * 2) num_buckets <<= 1;
    flat_mask_ = num_buckets - 1;
    flat_head_.assign(num_buckets, -1);
    flat_next_.assign(static_cast<size_t>(n), -1);
    // Reverse insertion order: each push-front then leaves every chain in
    // arrival order, matching the bucketed build's candidate order.
    for (int64_t i = n - 1; i >= 0; --i) {
      const size_t si = static_cast<size_t>(i);
      if (has_null[si] != 0) continue;
      const size_t b = flat_hash_[si] & flat_mask_;
      flat_next_[si] = flat_head_[b];
      flat_head_[b] = static_cast<int32_t>(i);
    }
    return Status::OK();
  }

  // Each partition owner scans the rows in arrival order and inserts the
  // ones hashing to it, so bucket candidate order is identical to a serial
  // build no matter how partitions are scheduled.
  ParallelForEach(static_cast<int64_t>(num_parts), num_threads_,
                  [&](int64_t p) {
                    Buckets& buckets = partitions_[static_cast<size_t>(p)];
                    // Size for the worst case (all keys distinct) up front
                    // so large builds never rehash mid-insert.
                    buckets.max_load_factor(0.7F);
                    buckets.reserve(static_cast<size_t>(n) / num_parts + 1);
                    for (int64_t i = 0; i < n; ++i) {
                      const size_t si = static_cast<size_t>(i);
                      if (has_null[si] != 0) continue;
                      if (hashes[si] % num_parts !=
                          static_cast<size_t>(p)) {
                        continue;
                      }
                      Row& row = rows[si];
                      std::vector<Value> key;
                      key.reserve(right_key_idx_.size());
                      for (const int idx : right_key_idx_) {
                        key.push_back(row[idx]);
                      }
                      buckets[std::move(key)].push_back(std::move(row));
                    }
                  });
  return Status::OK();
}

void HashJoinNode::GatherFlatCandidates(const std::vector<Value>& key,
                                        size_t h) const {
  flat_candidates_.clear();
  for (int32_t j = flat_head_[h & flat_mask_]; j >= 0; j = flat_next_[j]) {
    const size_t sj = static_cast<size_t>(j);
    // Equal keys always hash equal (SqlHash is consistent with
    // TotalOrderCompare), so a hash mismatch can never hide a match.
    if (flat_hash_[sj] != h) continue;
    const Row& row = flat_rows_[sj];
    bool equal = true;
    for (size_t k = 0; k < right_key_idx_.size(); ++k) {
      if (Value::TotalOrderCompare(key[k], row[right_key_idx_[k]]) != 0) {
        equal = false;
        break;
      }
    }
    if (equal) flat_candidates_.push_back(&row);
  }
}

void HashJoinNode::ProbeRowFlat(const Row& left_row, bool probe_null,
                                std::vector<Row>* out) const {
  // Mirrors ProbeRow below over flat_candidates_ (already gathered).
  bool matched = false;
  for (const Row* right_row : flat_candidates_) {
    Row combined = Row::Concat(left_row, *right_row);
    if (!bound_residual_.Matches(combined)) continue;
    matched = true;
    if (join_type_ == JoinType::kInner ||
        join_type_ == JoinType::kLeftOuter) {
      NESTRA_DCHECK(combined.size() == schema_.num_fields());
      out->push_back(std::move(combined));
      continue;
    }
    break;
  }

  switch (join_type_) {
    case JoinType::kInner:
      break;
    case JoinType::kLeftSemi:
      if (matched) out->push_back(left_row);
      break;
    case JoinType::kLeftOuter:
      if (!matched) {
        NESTRA_DCHECK(left_row.size() + right_width_ == schema_.num_fields());
        out->push_back(Row::Concat(left_row, Row::Nulls(right_width_)));
      }
      break;
    case JoinType::kLeftAnti:
      if (!matched) out->push_back(left_row);
      break;
    case JoinType::kLeftAntiNullAware: {
      if (matched) break;
      if (build_rows_ == 0) {
        out->push_back(left_row);
        break;
      }
      if (!probe_null && !build_has_null_key_) out->push_back(left_row);
      break;
    }
  }
}

void HashJoinNode::ProbeRow(const Row& left_row, std::vector<Row>* out) const {
  if (flat_built_) {
    bool probe_null = false;
    std::vector<Value> key;
    key.reserve(left_key_idx_.size());
    for (const int idx : left_key_idx_) {
      if (left_row[idx].is_null()) probe_null = true;
      key.push_back(left_row[idx]);
    }
    flat_candidates_.clear();
    if (!probe_null) GatherFlatCandidates(key, SqlValueKeyHash{}(key));
    ProbeRowFlat(left_row, probe_null, out);
    return;
  }
  const std::vector<Row>* candidates = nullptr;
  bool probe_null = false;
  {
    std::vector<Value> key;
    key.reserve(left_key_idx_.size());
    for (const int idx : left_key_idx_) {
      if (left_row[idx].is_null()) probe_null = true;
      key.push_back(left_row[idx]);
    }
    if (!probe_null) {
      const size_t h = SqlValueKeyHash{}(key);
      const Buckets& buckets = partitions_[h % partitions_.size()];
      const auto it = buckets.find(key);
      if (it != buckets.end()) candidates = &it->second;
    }
  }

  bool matched = false;
  if (candidates != nullptr) {
    for (const Row& right_row : *candidates) {
      Row combined = Row::Concat(left_row, right_row);
      if (!bound_residual_.Matches(combined)) continue;
      matched = true;
      if (join_type_ == JoinType::kInner ||
          join_type_ == JoinType::kLeftOuter) {
        // Joins never rename: the concatenated row is exactly as wide as
        // the schema fixed at construction.
        NESTRA_DCHECK(combined.size() == schema_.num_fields());
        out->push_back(std::move(combined));
        continue;
      }
      // Semi/anti flavors decide on the first residual-passing match.
      break;
    }
  }

  switch (join_type_) {
    case JoinType::kInner:
      break;  // matches already emitted
    case JoinType::kLeftSemi:
      if (matched) out->push_back(left_row);
      break;
    case JoinType::kLeftOuter:
      if (!matched) {
        // NULL padding must line up with the right side's full width.
        NESTRA_DCHECK(left_row.size() + right_width_ == schema_.num_fields());
        out->push_back(Row::Concat(left_row, Row::Nulls(right_width_)));
      }
      break;
    case JoinType::kLeftAnti:
      if (!matched) out->push_back(left_row);
      break;
    case JoinType::kLeftAntiNullAware: {
      if (matched) break;
      // NOT IN semantics (single conceptual key): empty set keeps the row;
      // otherwise NULL probe key or NULL in the build keys -> Unknown ->
      // dropped.
      if (build_rows_ == 0) {
        out->push_back(left_row);
        break;
      }
      if (!probe_null && !build_has_null_key_) out->push_back(left_row);
      break;
    }
  }
}

Status HashJoinNode::ParallelProbe() {
  std::vector<Row> probe_rows;
  NESTRA_RETURN_NOT_OK(DrainAllRows(left_.get(), vectorized_, &probe_rows));
  const int64_t n = static_cast<int64_t>(probe_rows.size());
  probe_count_ = n;
  left_done_ = true;

  // Per-morsel output slots, concatenated in morsel order: morsels are
  // contiguous input ranges, so the result equals the serial probe order.
  std::vector<std::vector<Row>> slots(
      static_cast<size_t>(MorselCount(n, num_threads_)));
  ParallelForMorsels(n, num_threads_,
                     [&](int64_t m, int64_t begin, int64_t end) {
                       std::vector<Row>& out = slots[static_cast<size_t>(m)];
                       for (int64_t i = begin; i < end; ++i) {
                         ProbeRow(probe_rows[static_cast<size_t>(i)], &out);
                       }
                     });

  size_t total = 0;
  for (const std::vector<Row>& s : slots) total += s.size();
  pending_.clear();
  pending_.reserve(total);
  for (std::vector<Row>& s : slots) {
    for (Row& r : s) pending_.push_back(std::move(r));
  }
  pending_pos_ = 0;
  return Status::OK();
}

Status HashJoinNode::NextImpl(Row* out, bool* eof) {
  while (pending_pos_ >= pending_.size()) {
    if (left_done_) {
      *eof = true;
      return Status::OK();
    }
    pending_.clear();
    pending_pos_ = 0;
    Row left_row;
    bool left_eof = false;
    NESTRA_RETURN_NOT_OK(left_->Next(&left_row, &left_eof));
    if (left_eof) {
      left_done_ = true;
      continue;
    }
    ++probe_count_;
    ProbeRow(left_row, &pending_);
  }
  *out = std::move(pending_[pending_pos_++]);
  *eof = false;
  return Status::OK();
}

void HashJoinNode::HashProbeBatch() {
  // One SqlHash key combine per row, column-at-a-time; byte-identical to
  // SqlKeyHashOn over the materialized row (kFnvOffsetBasis, then per key
  // column h ^= SqlHash; h *= kFnvPrime).
  constexpr size_t kNullHash = 0x9e3779b97f4a7c15ULL;
  constexpr size_t kNumericMix = 0xc4ceb9fe1a85ec53ULL;
  const size_t n = static_cast<size_t>(probe_batch_.num_rows());
  probe_hashes_.assign(n, kFnvOffsetBasis);
  probe_null_.assign(n, 0);
  for (const int idx : left_key_idx_) {
    const ColumnVector& col = probe_batch_.column(idx);
    const std::vector<uint8_t>& nulls = col.nulls();
    const bool generic = col.generic();
    for (size_t i = 0; i < n; ++i) {
      size_t vh = 0;
      if (nulls[i] != 0) {
        probe_null_[i] = 1;
        vh = kNullHash;
      } else if (generic) {
        vh = col.GetValue(static_cast<int64_t>(i)).SqlHash();
      } else {
        switch (col.type()) {
          case TypeId::kInt64:
          case TypeId::kDate: {
            const double d = static_cast<double>(col.ints()[i]);
            vh = std::hash<double>()(d) ^ kNumericMix;
            break;
          }
          case TypeId::kFloat64: {
            double d = col.doubles()[i];
            if (d == 0.0) d = 0.0;  // canonicalize -0.0, like SqlHash
            vh = std::hash<double>()(d) ^ kNumericMix;
            break;
          }
          case TypeId::kString:
            vh = std::hash<std::string>()(col.strings()[i]);
            break;
        }
      }
      probe_hashes_[i] ^= vh;
      probe_hashes_[i] *= kFnvPrime;
    }
  }
}

int64_t HashJoinNode::ProbeBatchRow(int64_t i, RowBatch* out) {
  const bool probe_null = probe_null_[static_cast<size_t>(i)] != 0;
  flat_candidates_.clear();
  if (!probe_null) {
    scratch_key_.clear();
    for (const int idx : left_key_idx_) {
      scratch_key_.push_back(probe_batch_.column(idx).GetValue(i));
    }
    const size_t h = probe_hashes_[static_cast<size_t>(i)];
    if (flat_built_) {
      GatherFlatCandidates(scratch_key_, h);
    } else {
      const Buckets& buckets = partitions_[h % partitions_.size()];
      const auto it = buckets.find(scratch_key_);
      if (it != buckets.end()) {
        for (const Row& r : it->second) flat_candidates_.push_back(&r);
      }
    }
  }

  const int left_width = probe_batch_.num_columns();
  int64_t emitted = 0;
  bool matched = false;
  const bool combining = join_type_ == JoinType::kInner ||
                         join_type_ == JoinType::kLeftOuter;
  if (!flat_candidates_.empty()) {
    if (combining && bound_residual_.always_true()) {
      // Hot path: no residual — left cells copy typed storage to typed
      // storage, right cells come straight from the build rows.
      for (const Row* right_row : flat_candidates_) {
        matched = true;
        for (int c = 0; c < left_width; ++c) {
          out->column(c).AppendFrom(probe_batch_.column(c), i);
        }
        for (int c = 0; c < right_width_; ++c) {
          out->column(left_width + c).Append((*right_row)[c]);
        }
        ++emitted;
      }
    } else if (combining) {
      const Row left_row = probe_batch_.MaterializeRow(i);
      for (const Row* right_row : flat_candidates_) {
        Row combined = Row::Concat(left_row, *right_row);
        if (!bound_residual_.Matches(combined)) continue;
        matched = true;
        NESTRA_DCHECK(combined.size() == schema_.num_fields());
        for (int c = 0; c < combined.size(); ++c) {
          out->column(c).Append(std::move(combined[c]));
        }
        ++emitted;
      }
    } else if (bound_residual_.always_true()) {
      matched = true;
    } else {
      const Row left_row = probe_batch_.MaterializeRow(i);
      for (const Row* right_row : flat_candidates_) {
        if (bound_residual_.Matches(Row::Concat(left_row, *right_row))) {
          matched = true;
          break;
        }
      }
    }
  }

  // Per-row epilogue, mirroring ProbeRow exactly.
  bool emit_left_only = false;
  switch (join_type_) {
    case JoinType::kInner:
      break;
    case JoinType::kLeftSemi:
      emit_left_only = matched;
      break;
    case JoinType::kLeftOuter:
      if (!matched) {
        for (int c = 0; c < left_width; ++c) {
          out->column(c).AppendFrom(probe_batch_.column(c), i);
        }
        for (int c = 0; c < right_width_; ++c) {
          out->column(left_width + c).AppendNull();
        }
        ++emitted;
      }
      break;
    case JoinType::kLeftAnti:
      emit_left_only = !matched;
      break;
    case JoinType::kLeftAntiNullAware:
      if (matched) break;
      if (build_rows_ == 0) {
        emit_left_only = true;
        break;
      }
      emit_left_only = !probe_null && !build_has_null_key_;
      break;
  }
  if (emit_left_only) {
    for (int c = 0; c < left_width; ++c) {
      out->column(c).AppendFrom(probe_batch_.column(c), i);
    }
    ++emitted;
  }
  return emitted;
}

Status HashJoinNode::NextBatchImpl(RowBatch* out, bool* eof) {
  if (num_threads_ > 1) {
    // The parallel probe already materialized the whole result; emit it in
    // batch-sized slices.
    size_t end = pending_pos_ + static_cast<size_t>(RowBatch::kDefaultCapacity);
    if (end > pending_.size()) end = pending_.size();
    for (; pending_pos_ < end; ++pending_pos_) {
      out->AppendRow(std::move(pending_[pending_pos_]));
    }
    *eof = out->empty();
    return Status::OK();
  }
  int64_t emitted = 0;
  while (emitted < RowBatch::kDefaultCapacity) {
    if (probe_pos_ >= probe_batch_.num_rows()) {
      if (left_done_) break;
      bool left_eof = false;
      NESTRA_RETURN_NOT_OK(left_->NextBatch(&probe_batch_, &left_eof));
      if (left_eof) {
        left_done_ = true;
        break;
      }
      probe_pos_ = 0;
      probe_count_ += probe_batch_.num_rows();
      HashProbeBatch();
    }
    while (probe_pos_ < probe_batch_.num_rows() &&
           emitted < RowBatch::kDefaultCapacity) {
      emitted += ProbeBatchRow(probe_pos_, out);
      ++probe_pos_;
    }
  }
  out->set_num_rows(emitted);
  *eof = out->empty();
  return Status::OK();
}

void HashJoinNode::CloseImpl() {
  stats_.build_rows = build_rows_;
  stats_.probe_rows = probe_count_;
  partitions_.clear();
  pending_.clear();
  flat_built_ = false;
  flat_rows_.clear();
  flat_hash_.clear();
  flat_head_.clear();
  flat_next_.clear();
  flat_candidates_.clear();
  left_->Close();
  right_->Close();
}

}  // namespace nestra
