#include "exec/hash_join.h"

#include "common/check.h"

namespace nestra {

HashJoinNode::HashJoinNode(ExecNodePtr left, ExecNodePtr right,
                           JoinType join_type, std::vector<EquiPair> equi,
                           ExprPtr residual)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_type_(join_type),
      equi_(std::move(equi)),
      residual_(std::move(residual)) {
  // Schema is known at construction: joins never rename.
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
    Schema padded = rs;
    if (join_type_ == JoinType::kLeftOuter) {
      // Outer padding makes every right field nullable.
      std::vector<Field> fields = rs.fields();
      for (Field& f : fields) f.nullable = true;
      padded = Schema(std::move(fields));
    }
    schema_ = Schema::Concat(ls, padded);
  } else {
    schema_ = ls;
  }
  right_width_ = rs.num_fields();
}

Status HashJoinNode::Open() {
  NESTRA_RETURN_NOT_OK(left_->Open());
  NESTRA_RETURN_NOT_OK(right_->Open());

  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  left_key_idx_.clear();
  right_key_idx_.clear();
  for (const EquiPair& p : equi_) {
    NESTRA_ASSIGN_OR_RETURN(int li, ls.Resolve(p.left));
    NESTRA_ASSIGN_OR_RETURN(int ri, rs.Resolve(p.right));
    left_key_idx_.push_back(li);
    right_key_idx_.push_back(ri);
  }
  // Equi pairs come in matched (left, right) columns.
  NESTRA_DCHECK(left_key_idx_.size() == right_key_idx_.size());
  NESTRA_ASSIGN_OR_RETURN(
      bound_residual_,
      BoundPredicate::Make(residual_.get(), Schema::Concat(ls, rs)));

  // Build phase.
  buckets_.clear();
  build_has_null_key_ = false;
  build_rows_ = 0;
  Row row;
  bool eof = false;
  while (true) {
    NESTRA_RETURN_NOT_OK(right_->Next(&row, &eof));
    if (eof) break;
    ++build_rows_;
    std::vector<Value> key;
    key.reserve(right_key_idx_.size());
    bool has_null = false;
    for (int idx : right_key_idx_) {
      if (row[idx].is_null()) has_null = true;
      key.push_back(row[idx]);
    }
    if (has_null) {
      // A NULL build key can never satisfy an equality; remember it for the
      // null-aware antijoin, drop it otherwise.
      build_has_null_key_ = true;
      continue;
    }
    buckets_[std::move(key)].push_back(std::move(row));
    row = Row();
  }

  left_valid_ = false;
  probe_count_ = 0;
  return Status::OK();
}

Status HashJoinNode::AdvanceLeft(bool* eof) {
  NESTRA_RETURN_NOT_OK(left_->Next(&left_row_, eof));
  if (*eof) {
    left_valid_ = false;
    return Status::OK();
  }
  ++probe_count_;
  left_valid_ = true;
  emitted_match_ = false;
  cand_pos_ = 0;
  candidates_ = nullptr;
  std::vector<Value> key;
  key.reserve(left_key_idx_.size());
  bool has_null = false;
  for (int idx : left_key_idx_) {
    if (left_row_[idx].is_null()) has_null = true;
    key.push_back(left_row_[idx]);
  }
  if (!has_null) {
    const auto it = buckets_.find(key);
    if (it != buckets_.end()) candidates_ = &it->second;
  }
  return Status::OK();
}

Status HashJoinNode::Next(Row* out, bool* eof) {
  while (true) {
    if (!left_valid_) {
      bool left_eof = false;
      NESTRA_RETURN_NOT_OK(AdvanceLeft(&left_eof));
      if (left_eof) {
        *eof = true;
        return Status::OK();
      }
    }

    // Scan remaining candidates for this left row.
    while (candidates_ != nullptr && cand_pos_ < candidates_->size()) {
      const Row& right_row = (*candidates_)[cand_pos_++];
      Row combined = Row::Concat(left_row_, right_row);
      if (!bound_residual_.Matches(combined)) continue;
      emitted_match_ = true;
      switch (join_type_) {
        case JoinType::kInner:
        case JoinType::kLeftOuter:
          // Joins never rename: the concatenated row is exactly as wide as
          // the schema fixed at construction.
          NESTRA_DCHECK(combined.size() == schema_.num_fields());
          *out = std::move(combined);
          *eof = false;
          return Status::OK();
        case JoinType::kLeftSemi:
          *out = left_row_;
          *eof = false;
          left_valid_ = false;  // one output per left row
          return Status::OK();
        case JoinType::kLeftAnti:
        case JoinType::kLeftAntiNullAware:
          // Disqualified; skip remaining candidates.
          candidates_ = nullptr;
          break;
      }
    }

    // Candidates exhausted: handle per-left-row epilogue.
    const bool matched = emitted_match_;
    const Row current = left_row_;
    left_valid_ = false;

    switch (join_type_) {
      case JoinType::kInner:
      case JoinType::kLeftSemi:
        break;  // nothing to emit
      case JoinType::kLeftOuter:
        if (!matched) {
          // NULL padding must line up with the right side's full width.
          NESTRA_DCHECK(current.size() + right_width_ ==
                        schema_.num_fields());
          *out = Row::Concat(current, Row::Nulls(right_width_));
          *eof = false;
          return Status::OK();
        }
        break;
      case JoinType::kLeftAnti:
        if (!matched) {
          *out = current;
          *eof = false;
          return Status::OK();
        }
        break;
      case JoinType::kLeftAntiNullAware: {
        if (matched) break;
        // NOT IN semantics (single conceptual key): empty set keeps the row;
        // otherwise NULL probe key or NULL in the build keys -> Unknown ->
        // dropped.
        if (build_rows_ == 0) {
          *out = current;
          *eof = false;
          return Status::OK();
        }
        const bool probe_null = current.AnyNullOn(left_key_idx_);
        if (!probe_null && !build_has_null_key_) {
          *out = current;
          *eof = false;
          return Status::OK();
        }
        break;
      }
    }
  }
}

void HashJoinNode::Close() {
  buckets_.clear();
  left_->Close();
  right_->Close();
}

}  // namespace nestra
