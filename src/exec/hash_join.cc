#include "exec/hash_join.h"

#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/memory_tracker.h"
#include "common/thread_pool.h"

namespace nestra {

HashJoinNode::HashJoinNode(ExecNodePtr left, ExecNodePtr right,
                           JoinType join_type, std::vector<EquiPair> equi,
                           ExprPtr residual, int num_threads, bool vectorized,
                           const JoinBuildHints& hints)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_type_(join_type),
      equi_(std::move(equi)),
      residual_(std::move(residual)),
      num_threads_(num_threads < 1 ? 1 : num_threads),
      hints_(hints) {
  vectorized_ = vectorized;
  // Schema is known at construction: joins never rename.
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
    Schema padded = rs;
    if (join_type_ == JoinType::kLeftOuter) {
      // Outer padding makes every right field nullable.
      std::vector<Field> fields = rs.fields();
      for (Field& f : fields) f.nullable = true;
      padded = Schema(std::move(fields));
    }
    schema_ = Schema::Concat(ls, padded);
  } else {
    schema_ = ls;
  }
  right_width_ = rs.num_fields();
}

std::string HashJoinNode::detail() const {
  std::string d;
  if (hints_.build_left) d = "build=left";
  if (hints_.perfect) {
    if (!d.empty()) d += ",";
    d += "perfect";
  }
  return d;
}

Status HashJoinNode::ChargeMem(int64_t bytes) {
  if (bytes == 0) return Status::OK();
  charged_mem_ += bytes;
  stats_.mem_bytes += bytes;
  if (stats_.mem_bytes > stats_.peak_mem_bytes) {
    stats_.peak_mem_bytes = stats_.mem_bytes;
  }
  if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
    return mem->Charge(bytes);
  }
  return Status::OK();
}

void HashJoinNode::ReleaseMem(int64_t bytes) {
  if (bytes == 0) return;
  charged_mem_ -= bytes;
  stats_.mem_bytes -= bytes;
  if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
    mem->Release(bytes);
  }
}

Status HashJoinNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(left_->Open());
  NESTRA_RETURN_NOT_OK(right_->Open());

  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  left_key_idx_.clear();
  right_key_idx_.clear();
  for (const EquiPair& p : equi_) {
    NESTRA_ASSIGN_OR_RETURN(int li, ls.Resolve(p.left));
    NESTRA_ASSIGN_OR_RETURN(int ri, rs.Resolve(p.right));
    left_key_idx_.push_back(li);
    right_key_idx_.push_back(ri);
  }
  // Equi pairs come in matched (left, right) columns.
  NESTRA_DCHECK(left_key_idx_.size() == right_key_idx_.size());
  NESTRA_ASSIGN_OR_RETURN(
      bound_residual_,
      BoundPredicate::Make(residual_.get(), Schema::Concat(ls, rs)));

  pending_.clear();
  pending_pos_ = 0;
  left_done_ = false;
  materialized_ = false;
  probe_count_ = 0;
  probe_batch_.Clear();
  probe_pos_ = 0;

  if (hints_.build_left) {
    return MirroredBuildProbe();
  }

  NESTRA_RETURN_NOT_OK(BuildTable());
  if (num_threads_ > 1) {
    NESTRA_RETURN_NOT_OK(ParallelProbe());
  }
  return Status::OK();
}

Status HashJoinNode::BuildTable() {
  build_has_null_key_ = false;
  build_rows_ = 0;
  flat_built_ = false;
  perfect_built_ = false;
  perfect_head_.clear();

  // Drain the child serially (Next/NextBatch is a serial protocol), then
  // hash and partition the materialized rows in parallel.
  std::vector<Row> rows;
  int64_t build_bytes = 0;
  NESTRA_RETURN_NOT_OK(
      DrainAllRows(right_.get(), vectorized_, &rows, &build_bytes));
  build_rows_ = static_cast<int64_t>(rows.size());
  NESTRA_RETURN_NOT_OK(ChargeMem(build_bytes));

  const int64_t n = build_rows_;
  const size_t num_parts = num_threads_ > 1 ? static_cast<size_t>(num_threads_)
                                            : size_t{1};
  partitions_.assign(num_parts, Buckets{});
  if (n == 0) return Status::OK();

  std::vector<size_t> hashes(static_cast<size_t>(n));
  std::vector<uint8_t> has_null(static_cast<size_t>(n), 0);
  ParallelForMorsels(n, num_threads_, [&](int64_t, int64_t begin,
                                          int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const Row& r = rows[static_cast<size_t>(i)];
      bool null_key = false;
      for (const int idx : right_key_idx_) {
        if (r[idx].is_null()) null_key = true;
      }
      has_null[static_cast<size_t>(i)] = null_key ? 1 : 0;
      if (!null_key) {
        hashes[static_cast<size_t>(i)] = SqlKeyHashOn(r, right_key_idx_);
      }
    }
  });
  // One serial pass: null-key detection for the null-aware antijoin, plus
  // the logical size of the key copies the partitioned build will make
  // (only that build duplicates keys out of the rows).
  int64_t key_bytes = 0;
  for (int64_t i = 0; i < n; ++i) {
    const size_t si = static_cast<size_t>(i);
    if (has_null[si] != 0) {
      build_has_null_key_ = true;
      continue;
    }
    for (const int idx : right_key_idx_) {
      key_bytes += ValueBytes(rows[si][idx]);
    }
  }

  // Perfect (dense-array) keying: single equality key over a hinted dense
  // int range. Validated against the actual rows, so a wrong hint falls
  // through to the generic builds below instead of corrupting results.
  if (hints_.perfect && equi_.size() == 1 && TryPerfectBuild(&rows, has_null)) {
    return ChargeMem(
        static_cast<int64_t>(perfect_head_.size() * sizeof(int32_t) +
                             flat_next_.size() * sizeof(int32_t)));
  }

  if (vectorized_ && num_threads_ == 1) {
    // Serial vectorized build: index chains over the materialized rows.
    // partitions_ would pay three allocations per insert (map node, key
    // vector, bucket vector); the chains pay none.
    flat_built_ = true;
    flat_rows_ = std::move(rows);
    flat_hash_ = std::move(hashes);
    size_t num_buckets = 16;
    while (num_buckets < static_cast<size_t>(n) * 2) num_buckets <<= 1;
    flat_mask_ = num_buckets - 1;
    flat_head_.assign(num_buckets, -1);
    flat_next_.assign(static_cast<size_t>(n), -1);
    // Reverse insertion order: each push-front then leaves every chain in
    // arrival order, matching the bucketed build's candidate order.
    for (int64_t i = n - 1; i >= 0; --i) {
      const size_t si = static_cast<size_t>(i);
      if (has_null[si] != 0) continue;
      const size_t b = flat_hash_[si] & flat_mask_;
      flat_next_[si] = flat_head_[b];
      flat_head_[b] = static_cast<int32_t>(i);
    }
    return ChargeMem(
        static_cast<int64_t>(flat_head_.size() * sizeof(int32_t) +
                             flat_next_.size() * sizeof(int32_t) +
                             flat_hash_.size() * sizeof(size_t)));
  }

  // Each partition owner scans the rows in arrival order and inserts the
  // ones hashing to it, so bucket candidate order is identical to a serial
  // build no matter how partitions are scheduled.
  ParallelForEach(static_cast<int64_t>(num_parts), num_threads_,
                  [&](int64_t p) {
                    Buckets& buckets = partitions_[static_cast<size_t>(p)];
                    // Size for the worst case (all keys distinct) up front
                    // so large builds never rehash mid-insert.
                    buckets.max_load_factor(0.7F);
                    buckets.reserve(static_cast<size_t>(n) / num_parts + 1);
                    for (int64_t i = 0; i < n; ++i) {
                      const size_t si = static_cast<size_t>(i);
                      if (has_null[si] != 0) continue;
                      if (hashes[si] % num_parts !=
                          static_cast<size_t>(p)) {
                        continue;
                      }
                      Row& row = rows[si];
                      std::vector<Value> key;
                      key.reserve(right_key_idx_.size());
                      for (const int idx : right_key_idx_) {
                        key.push_back(row[idx]);
                      }
                      buckets[std::move(key)].push_back(std::move(row));
                    }
                  });
  return ChargeMem(key_bytes);
}

bool HashJoinNode::TryPerfectBuild(std::vector<Row>* rows,
                                   const std::vector<uint8_t>& has_null) {
  const int64_t n = static_cast<int64_t>(rows->size());
  const int64_t min = hints_.perfect_min;
  const int64_t max = hints_.perfect_max;
  if (max < min) return false;
  const int64_t span = max - min + 1;  // the estimator caps this at 2^22
  const int key_idx = right_key_idx_[0];
  // Validate before committing: every non-NULL build key must be an int64
  // inside the hinted range. Load-time stats guarantee this for immutable
  // catalog tables; anything else (a stale hint) degrades to the generic
  // build, never to wrong results.
  for (int64_t i = 0; i < n; ++i) {
    if (has_null[static_cast<size_t>(i)] != 0) continue;
    const Value& v = (*rows)[static_cast<size_t>(i)][key_idx];
    if (!v.is_int() || v.int64() < min || v.int64() > max) return false;
  }
  perfect_built_ = true;
  flat_rows_ = std::move(*rows);
  perfect_head_.assign(static_cast<size_t>(span), -1);
  flat_next_.assign(static_cast<size_t>(n), -1);
  // Reverse insertion order, like the flat build: push-front leaves every
  // chain in arrival order, so candidate order matches the generic table.
  for (int64_t i = n - 1; i >= 0; --i) {
    const size_t si = static_cast<size_t>(i);
    if (has_null[si] != 0) continue;
    const size_t slot =
        static_cast<size_t>(flat_rows_[si][key_idx].int64() - min);
    flat_next_[si] = perfect_head_[slot];
    perfect_head_[slot] = static_cast<int32_t>(i);
  }
  return true;
}

bool HashJoinNode::DenseKeyOf(const Value& v, int64_t* key) const {
  if (v.is_int()) {
    *key = v.int64();
    return *key >= hints_.perfect_min && *key <= hints_.perfect_max;
  }
  // SQL key equality: a float equal to an integer matches it, so integral
  // in-range doubles index the array; everything else matches nothing.
  const auto d = v.AsDouble();  // nullopt for NULL / string
  if (!d.has_value() || *d != std::floor(*d)) return false;
  if (*d < static_cast<double>(hints_.perfect_min) ||
      *d > static_cast<double>(hints_.perfect_max)) {
    return false;
  }
  *key = static_cast<int64_t>(*d);
  return true;
}

void HashJoinNode::GatherFlatCandidates(const std::vector<Value>& key,
                                        size_t h) const {
  flat_candidates_.clear();
  for (int32_t j = flat_head_[h & flat_mask_]; j >= 0; j = flat_next_[j]) {
    const size_t sj = static_cast<size_t>(j);
    // Equal keys always hash equal (SqlHash is consistent with
    // TotalOrderCompare), so a hash mismatch can never hide a match.
    if (flat_hash_[sj] != h) continue;
    const Row& row = flat_rows_[sj];
    bool equal = true;
    for (size_t k = 0; k < right_key_idx_.size(); ++k) {
      if (Value::TotalOrderCompare(key[k], row[right_key_idx_[k]]) != 0) {
        equal = false;
        break;
      }
    }
    if (equal) flat_candidates_.push_back(&row);
  }
}

void HashJoinNode::ProbeRowPerfect(const Row& left_row,
                                   std::vector<const Row*>* scratch,
                                   std::vector<Row>* out) const {
  // Caller-owned scratch: the perfect probe runs under ParallelProbe too,
  // where concurrent morsels must not share a candidate buffer.
  const Value& v = left_row[left_key_idx_[0]];
  scratch->clear();
  const bool probe_null = v.is_null();
  int64_t key = 0;
  if (!probe_null && DenseKeyOf(v, &key)) {
    for (int32_t j = perfect_head_[static_cast<size_t>(key -
                                                       hints_.perfect_min)];
         j >= 0; j = flat_next_[j]) {
      scratch->push_back(&flat_rows_[static_cast<size_t>(j)]);
    }
  }
  EmitMatches(left_row, probe_null, *scratch, out);
}

void HashJoinNode::EmitMatches(const Row& left_row, bool probe_null,
                               const std::vector<const Row*>& candidates,
                               std::vector<Row>* out) const {
  // Mirrors ProbeRow below over an already-gathered candidate list.
  bool matched = false;
  for (const Row* right_row : candidates) {
    Row combined = Row::Concat(left_row, *right_row);
    if (!bound_residual_.Matches(combined)) continue;
    matched = true;
    if (join_type_ == JoinType::kInner ||
        join_type_ == JoinType::kLeftOuter) {
      NESTRA_DCHECK(combined.size() == schema_.num_fields());
      out->push_back(std::move(combined));
      continue;
    }
    break;
  }

  switch (join_type_) {
    case JoinType::kInner:
      break;
    case JoinType::kLeftSemi:
      if (matched) out->push_back(left_row);
      break;
    case JoinType::kLeftOuter:
      if (!matched) {
        NESTRA_DCHECK(left_row.size() + right_width_ == schema_.num_fields());
        out->push_back(Row::Concat(left_row, Row::Nulls(right_width_)));
      }
      break;
    case JoinType::kLeftAnti:
      if (!matched) out->push_back(left_row);
      break;
    case JoinType::kLeftAntiNullAware: {
      if (matched) break;
      if (build_rows_ == 0) {
        out->push_back(left_row);
        break;
      }
      if (!probe_null && !build_has_null_key_) out->push_back(left_row);
      break;
    }
  }
}

void HashJoinNode::ProbeRow(const Row& left_row, std::vector<Row>* out) const {
  if (perfect_built_) {
    // Serial callers share flat_candidates_ as scratch; ParallelProbe calls
    // ProbeRowPerfect directly with a per-morsel buffer instead.
    ProbeRowPerfect(left_row, &flat_candidates_, out);
    return;
  }
  if (flat_built_) {
    bool probe_null = false;
    std::vector<Value> key;
    key.reserve(left_key_idx_.size());
    for (const int idx : left_key_idx_) {
      if (left_row[idx].is_null()) probe_null = true;
      key.push_back(left_row[idx]);
    }
    flat_candidates_.clear();
    if (!probe_null) GatherFlatCandidates(key, SqlValueKeyHash{}(key));
    EmitMatches(left_row, probe_null, flat_candidates_, out);
    return;
  }
  const std::vector<Row>* candidates = nullptr;
  bool probe_null = false;
  {
    std::vector<Value> key;
    key.reserve(left_key_idx_.size());
    for (const int idx : left_key_idx_) {
      if (left_row[idx].is_null()) probe_null = true;
      key.push_back(left_row[idx]);
    }
    if (!probe_null) {
      const size_t h = SqlValueKeyHash{}(key);
      const Buckets& buckets = partitions_[h % partitions_.size()];
      const auto it = buckets.find(key);
      if (it != buckets.end()) candidates = &it->second;
    }
  }

  bool matched = false;
  if (candidates != nullptr) {
    for (const Row& right_row : *candidates) {
      Row combined = Row::Concat(left_row, right_row);
      if (!bound_residual_.Matches(combined)) continue;
      matched = true;
      if (join_type_ == JoinType::kInner ||
          join_type_ == JoinType::kLeftOuter) {
        // Joins never rename: the concatenated row is exactly as wide as
        // the schema fixed at construction.
        NESTRA_DCHECK(combined.size() == schema_.num_fields());
        out->push_back(std::move(combined));
        continue;
      }
      // Semi/anti flavors decide on the first residual-passing match.
      break;
    }
  }

  switch (join_type_) {
    case JoinType::kInner:
      break;  // matches already emitted
    case JoinType::kLeftSemi:
      if (matched) out->push_back(left_row);
      break;
    case JoinType::kLeftOuter:
      if (!matched) {
        // NULL padding must line up with the right side's full width.
        NESTRA_DCHECK(left_row.size() + right_width_ == schema_.num_fields());
        out->push_back(Row::Concat(left_row, Row::Nulls(right_width_)));
      }
      break;
    case JoinType::kLeftAnti:
      if (!matched) out->push_back(left_row);
      break;
    case JoinType::kLeftAntiNullAware: {
      if (matched) break;
      // NOT IN semantics (single conceptual key): empty set keeps the row;
      // otherwise NULL probe key or NULL in the build keys -> Unknown ->
      // dropped.
      if (build_rows_ == 0) {
        out->push_back(left_row);
        break;
      }
      if (!probe_null && !build_has_null_key_) out->push_back(left_row);
      break;
    }
  }
}

Status HashJoinNode::ParallelProbe() {
  std::vector<Row> probe_rows;
  int64_t probe_bytes = 0;
  NESTRA_RETURN_NOT_OK(
      DrainAllRows(left_.get(), vectorized_, &probe_rows, &probe_bytes));
  NESTRA_RETURN_NOT_OK(ChargeMem(probe_bytes));
  const int64_t n = static_cast<int64_t>(probe_rows.size());
  probe_count_ = n;
  left_done_ = true;

  // Per-morsel output slots, concatenated in morsel order: morsels are
  // contiguous input ranges, so the result equals the serial probe order.
  std::vector<std::vector<Row>> slots(
      static_cast<size_t>(MorselCount(n, num_threads_)));
  ParallelForMorsels(n, num_threads_,
                     [&](int64_t m, int64_t begin, int64_t end) {
                       std::vector<Row>& out = slots[static_cast<size_t>(m)];
                       // Per-morsel candidate scratch: the shared
                       // flat_candidates_ buffer is serial-only.
                       std::vector<const Row*> scratch;
                       for (int64_t i = begin; i < end; ++i) {
                         const Row& row = probe_rows[static_cast<size_t>(i)];
                         if (perfect_built_) {
                           ProbeRowPerfect(row, &scratch, &out);
                         } else {
                           ProbeRow(row, &out);
                         }
                       }
                     });

  size_t total = 0;
  for (const std::vector<Row>& s : slots) total += s.size();
  pending_.clear();
  pending_.reserve(total);
  for (std::vector<Row>& s : slots) {
    for (Row& r : s) pending_.push_back(std::move(r));
  }
  pending_pos_ = 0;
  materialized_ = true;
  // The materialized join result replaces the probe-side rows as live
  // state: charge it, then return the drained probe rows' bytes (the
  // vector dies with this frame). One RowBytes walk at a fold point.
  int64_t pending_bytes = 0;
  for (const Row& r : pending_) pending_bytes += RowBytes(r);
  Status charged = ChargeMem(pending_bytes);
  ReleaseMem(probe_bytes);
  return charged;
}

Status HashJoinNode::MirroredBuildProbe() {
  // Build-side swap: the estimator says the right input dwarfs the left,
  // so hash the LEFT rows and stream the right input past them. Join
  // semantics stay probe-side (left): matches are collected in right
  // arrival order, then stably regrouped by left row, which reproduces the
  // default plan's output — per left row in arrival order, that row's
  // matches in right arrival order — byte for byte.
  materialized_ = true;
  left_done_ = true;
  flat_built_ = false;
  perfect_built_ = false;
  build_has_null_key_ = false;
  partitions_.clear();

  // Drain right first, left second — the same child order as the default
  // build+probe, so IoSim sees an identical scan sequence.
  std::vector<Row> right_rows;
  std::vector<Row> left_rows;
  int64_t input_bytes = 0;
  NESTRA_RETURN_NOT_OK(
      DrainAllRows(right_.get(), vectorized_, &right_rows, &input_bytes));
  NESTRA_RETURN_NOT_OK(
      DrainAllRows(left_.get(), vectorized_, &left_rows, &input_bytes));
  NESTRA_RETURN_NOT_OK(ChargeMem(input_bytes));
  const int64_t nl = static_cast<int64_t>(left_rows.size());
  const int64_t nr = static_cast<int64_t>(right_rows.size());
  // The counters keep their logical meaning (build = right input, probe =
  // left input) so EXPLAIN/bench numbers compare across strategies.
  build_rows_ = nr;
  probe_count_ = nl;

  std::vector<uint8_t> left_null(static_cast<size_t>(nl), 0);
  for (int64_t i = 0; i < nl; ++i) {
    for (const int idx : left_key_idx_) {
      if (left_rows[static_cast<size_t>(i)][idx].is_null()) {
        left_null[static_cast<size_t>(i)] = 1;
      }
    }
  }
  std::vector<uint8_t> right_null(static_cast<size_t>(nr), 0);
  for (int64_t j = 0; j < nr; ++j) {
    for (const int idx : right_key_idx_) {
      if (right_rows[static_cast<size_t>(j)][idx].is_null()) {
        right_null[static_cast<size_t>(j)] = 1;
      }
    }
  }
  for (int64_t j = 0; j < nr; ++j) {
    if (right_null[static_cast<size_t>(j)] != 0) build_has_null_key_ = true;
  }

  // Key table over the LEFT rows: key -> left indices in arrival order —
  // a dense array chain when the perfect hint validates, a hash map
  // otherwise. NULL left keys match nothing and are only tracked for the
  // null-aware epilogue.
  using LeftBuckets =
      std::unordered_map<std::vector<Value>, std::vector<int64_t>,
                         SqlValueKeyHash, SqlValueKeyEq>;
  LeftBuckets left_map;
  std::vector<int32_t> head;
  std::vector<int32_t> next;
  bool perfect = hints_.perfect && equi_.size() == 1 &&
                 hints_.perfect_max >= hints_.perfect_min;
  if (perfect) {
    const int key_idx = left_key_idx_[0];
    for (int64_t i = 0; i < nl && perfect; ++i) {
      const size_t si = static_cast<size_t>(i);
      if (left_null[si] != 0) continue;
      const Value& v = left_rows[si][key_idx];
      if (!v.is_int() || v.int64() < hints_.perfect_min ||
          v.int64() > hints_.perfect_max) {
        perfect = false;
      }
    }
  }
  if (perfect) {
    const int key_idx = left_key_idx_[0];
    const size_t span = static_cast<size_t>(hints_.perfect_max -
                                            hints_.perfect_min + 1);
    head.assign(span, -1);
    next.assign(static_cast<size_t>(nl), -1);
    for (int64_t i = nl - 1; i >= 0; --i) {
      const size_t si = static_cast<size_t>(i);
      if (left_null[si] != 0) continue;
      const size_t slot = static_cast<size_t>(
          left_rows[si][key_idx].int64() - hints_.perfect_min);
      next[si] = head[slot];
      head[slot] = static_cast<int32_t>(i);
    }
  } else {
    left_map.max_load_factor(0.7F);
    left_map.reserve(static_cast<size_t>(nl) + 1);
    for (int64_t i = 0; i < nl; ++i) {
      const size_t si = static_cast<size_t>(i);
      if (left_null[si] != 0) continue;
      std::vector<Value> key;
      key.reserve(left_key_idx_.size());
      for (const int idx : left_key_idx_) {
        key.push_back(left_rows[si][idx]);
      }
      left_map[std::move(key)].push_back(i);
    }
  }

  const bool combining = join_type_ == JoinType::kInner ||
                         join_type_ == JoinType::kLeftOuter;

  // Stream the right rows in morsels; per-morsel slots concatenated in
  // morsel order keep the global match stream in right arrival order.
  struct Match {
    int64_t left;
    Row combined;
  };
  const int64_t morsels = MorselCount(nr, num_threads_);
  std::vector<std::vector<Match>> match_slots(static_cast<size_t>(morsels));
  std::vector<std::vector<int64_t>> flag_slots(static_cast<size_t>(morsels));
  ParallelForMorsels(nr, num_threads_, [&](int64_t m, int64_t begin,
                                           int64_t end) {
    std::vector<Match>& matches = match_slots[static_cast<size_t>(m)];
    std::vector<int64_t>& flags = flag_slots[static_cast<size_t>(m)];
    std::vector<Value> key;
    for (int64_t j = begin; j < end; ++j) {
      const size_t sj = static_cast<size_t>(j);
      if (right_null[sj] != 0) continue;
      const Row& right_row = right_rows[sj];
      const std::vector<int64_t>* idx_list = nullptr;
      int32_t chain = -1;
      if (perfect) {
        int64_t k = 0;
        if (!DenseKeyOf(right_row[right_key_idx_[0]], &k)) continue;
        chain = head[static_cast<size_t>(k - hints_.perfect_min)];
      } else {
        key.clear();
        for (const int idx : right_key_idx_) key.push_back(right_row[idx]);
        const auto it = left_map.find(key);
        if (it == left_map.end()) continue;
        idx_list = &it->second;
      }
      const auto probe_one = [&](int64_t li) {
        Row combined =
            Row::Concat(left_rows[static_cast<size_t>(li)], right_row);
        if (!bound_residual_.Matches(combined)) return;
        if (combining) {
          matches.push_back(Match{li, std::move(combined)});
        } else {
          flags.push_back(li);
        }
      };
      if (perfect) {
        for (int32_t i = chain; i >= 0; i = next[static_cast<size_t>(i)]) {
          probe_one(i);
        }
      } else {
        for (const int64_t li : *idx_list) probe_one(li);
      }
    }
  });

  pending_.clear();
  pending_pos_ = 0;
  if (combining) {
    // Stable regroup by left index (counting sort): per left row, its
    // matches stay in right arrival order.
    int64_t total = 0;
    for (const std::vector<Match>& s : match_slots) {
      total += static_cast<int64_t>(s.size());
    }
    std::vector<int64_t> offsets(static_cast<size_t>(nl) + 1, 0);
    for (const std::vector<Match>& s : match_slots) {
      for (const Match& m : s) ++offsets[static_cast<size_t>(m.left) + 1];
    }
    for (int64_t i = 0; i < nl; ++i) {
      offsets[static_cast<size_t>(i) + 1] += offsets[static_cast<size_t>(i)];
    }
    std::vector<Row> ordered(static_cast<size_t>(total));
    std::vector<int64_t> pos(offsets.begin(), offsets.end() - 1);
    for (std::vector<Match>& s : match_slots) {
      for (Match& m : s) {
        ordered[static_cast<size_t>(pos[static_cast<size_t>(m.left)]++)] =
            std::move(m.combined);
      }
    }
    pending_.reserve(static_cast<size_t>(total));
    for (int64_t li = 0; li < nl; ++li) {
      const int64_t b = offsets[static_cast<size_t>(li)];
      const int64_t e = offsets[static_cast<size_t>(li) + 1];
      if (b == e) {
        if (join_type_ == JoinType::kLeftOuter) {
          pending_.push_back(Row::Concat(left_rows[static_cast<size_t>(li)],
                                         Row::Nulls(right_width_)));
        }
        continue;
      }
      for (int64_t k = b; k < e; ++k) {
        pending_.push_back(std::move(ordered[static_cast<size_t>(k)]));
      }
    }
  } else {
    std::vector<uint8_t> matched(static_cast<size_t>(nl), 0);
    for (const std::vector<int64_t>& s : flag_slots) {
      for (const int64_t li : s) matched[static_cast<size_t>(li)] = 1;
    }
    for (int64_t li = 0; li < nl; ++li) {
      const size_t si = static_cast<size_t>(li);
      const bool hit = matched[si] != 0;
      bool emit = false;
      switch (join_type_) {
        case JoinType::kInner:
        case JoinType::kLeftOuter:
          break;  // handled above
        case JoinType::kLeftSemi:
          emit = hit;
          break;
        case JoinType::kLeftAnti:
          emit = !hit;
          break;
        case JoinType::kLeftAntiNullAware:
          // Same formula as the per-row epilogue in EmitMatches.
          emit = !hit && (build_rows_ == 0 ||
                          (left_null[si] == 0 && !build_has_null_key_));
          break;
      }
      if (emit) pending_.push_back(std::move(left_rows[si]));
    }
  }
  // Same hand-over as ParallelProbe: the pending result becomes the live
  // state, the drained inputs die with this frame.
  int64_t pending_bytes = 0;
  for (const Row& r : pending_) pending_bytes += RowBytes(r);
  Status charged = ChargeMem(pending_bytes);
  ReleaseMem(input_bytes);
  return charged;
}

Status HashJoinNode::NextImpl(Row* out, bool* eof) {
  while (pending_pos_ >= pending_.size()) {
    if (left_done_) {
      *eof = true;
      return Status::OK();
    }
    pending_.clear();
    pending_pos_ = 0;
    Row left_row;
    bool left_eof = false;
    NESTRA_RETURN_NOT_OK(left_->Next(&left_row, &left_eof));
    if (left_eof) {
      left_done_ = true;
      continue;
    }
    ++probe_count_;
    ProbeRow(left_row, &pending_);
  }
  *out = std::move(pending_[pending_pos_++]);
  *eof = false;
  return Status::OK();
}

void HashJoinNode::HashProbeBatch() {
  // One SqlHash key combine per row, column-at-a-time; byte-identical to
  // SqlKeyHashOn over the materialized row (kFnvOffsetBasis, then per key
  // column h ^= SqlHash; h *= kFnvPrime).
  constexpr size_t kNullHash = 0x9e3779b97f4a7c15ULL;
  constexpr size_t kNumericMix = 0xc4ceb9fe1a85ec53ULL;
  const size_t n = static_cast<size_t>(probe_batch_.num_rows());
  if (perfect_built_) {
    // The perfect probe indexes by value, not hash — only the NULL flags
    // are needed. Skipping the hash pass is most of the perfect join's win
    // on the batch path.
    probe_hashes_.assign(n, 0);
    probe_null_.assign(n, 0);
    for (const int idx : left_key_idx_) {
      const std::vector<uint8_t>& nulls = probe_batch_.column(idx).nulls();
      for (size_t i = 0; i < n; ++i) {
        if (nulls[i] != 0) probe_null_[i] = 1;
      }
    }
    return;
  }
  probe_hashes_.assign(n, kFnvOffsetBasis);
  probe_null_.assign(n, 0);
  for (const int idx : left_key_idx_) {
    const ColumnVector& col = probe_batch_.column(idx);
    const std::vector<uint8_t>& nulls = col.nulls();
    const bool generic = col.generic();
    for (size_t i = 0; i < n; ++i) {
      size_t vh = 0;
      if (nulls[i] != 0) {
        probe_null_[i] = 1;
        vh = kNullHash;
      } else if (generic) {
        vh = col.GetValue(static_cast<int64_t>(i)).SqlHash();
      } else {
        switch (col.type()) {
          case TypeId::kInt64:
          case TypeId::kDate: {
            const double d = static_cast<double>(col.ints()[i]);
            vh = std::hash<double>()(d) ^ kNumericMix;
            break;
          }
          case TypeId::kFloat64: {
            double d = col.doubles()[i];
            if (d == 0.0) d = 0.0;  // canonicalize -0.0, like SqlHash
            vh = std::hash<double>()(d) ^ kNumericMix;
            break;
          }
          case TypeId::kString:
            vh = std::hash<std::string>()(col.strings()[i]);
            break;
        }
      }
      probe_hashes_[i] ^= vh;
      probe_hashes_[i] *= kFnvPrime;
    }
  }
}

int64_t HashJoinNode::ProbeBatchRow(int64_t i, RowBatch* out) {
  const bool probe_null = probe_null_[static_cast<size_t>(i)] != 0;
  flat_candidates_.clear();
  if (!probe_null) {
    if (perfect_built_) {
      const ColumnVector& col = probe_batch_.column(left_key_idx_[0]);
      int64_t key = 0;
      bool in_range;
      if (!col.generic() && (col.type() == TypeId::kInt64 ||
                             col.type() == TypeId::kDate)) {
        key = col.ints()[static_cast<size_t>(i)];
        in_range = key >= hints_.perfect_min && key <= hints_.perfect_max;
      } else {
        in_range = DenseKeyOf(col.GetValue(i), &key);
      }
      if (in_range) {
        for (int32_t j = perfect_head_[static_cast<size_t>(
                 key - hints_.perfect_min)];
             j >= 0; j = flat_next_[j]) {
          flat_candidates_.push_back(&flat_rows_[static_cast<size_t>(j)]);
        }
      }
    } else {
      scratch_key_.clear();
      for (const int idx : left_key_idx_) {
        scratch_key_.push_back(probe_batch_.column(idx).GetValue(i));
      }
      const size_t h = probe_hashes_[static_cast<size_t>(i)];
      if (flat_built_) {
        GatherFlatCandidates(scratch_key_, h);
      } else {
        const Buckets& buckets = partitions_[h % partitions_.size()];
        const auto it = buckets.find(scratch_key_);
        if (it != buckets.end()) {
          for (const Row& r : it->second) flat_candidates_.push_back(&r);
        }
      }
    }
  }

  const int left_width = probe_batch_.num_columns();
  int64_t emitted = 0;
  bool matched = false;
  const bool combining = join_type_ == JoinType::kInner ||
                         join_type_ == JoinType::kLeftOuter;
  if (!flat_candidates_.empty()) {
    if (combining && bound_residual_.always_true()) {
      // Hot path: no residual — left cells copy typed storage to typed
      // storage, right cells come straight from the build rows.
      for (const Row* right_row : flat_candidates_) {
        matched = true;
        for (int c = 0; c < left_width; ++c) {
          out->column(c).AppendFrom(probe_batch_.column(c), i);
        }
        for (int c = 0; c < right_width_; ++c) {
          out->column(left_width + c).Append((*right_row)[c]);
        }
        ++emitted;
      }
    } else if (combining) {
      const Row left_row = probe_batch_.MaterializeRow(i);
      for (const Row* right_row : flat_candidates_) {
        Row combined = Row::Concat(left_row, *right_row);
        if (!bound_residual_.Matches(combined)) continue;
        matched = true;
        NESTRA_DCHECK(combined.size() == schema_.num_fields());
        for (int c = 0; c < combined.size(); ++c) {
          out->column(c).Append(std::move(combined[c]));
        }
        ++emitted;
      }
    } else if (bound_residual_.always_true()) {
      matched = true;
    } else {
      const Row left_row = probe_batch_.MaterializeRow(i);
      for (const Row* right_row : flat_candidates_) {
        if (bound_residual_.Matches(Row::Concat(left_row, *right_row))) {
          matched = true;
          break;
        }
      }
    }
  }

  // Per-row epilogue, mirroring ProbeRow exactly.
  bool emit_left_only = false;
  switch (join_type_) {
    case JoinType::kInner:
      break;
    case JoinType::kLeftSemi:
      emit_left_only = matched;
      break;
    case JoinType::kLeftOuter:
      if (!matched) {
        for (int c = 0; c < left_width; ++c) {
          out->column(c).AppendFrom(probe_batch_.column(c), i);
        }
        for (int c = 0; c < right_width_; ++c) {
          out->column(left_width + c).AppendNull();
        }
        ++emitted;
      }
      break;
    case JoinType::kLeftAnti:
      emit_left_only = !matched;
      break;
    case JoinType::kLeftAntiNullAware:
      if (matched) break;
      if (build_rows_ == 0) {
        emit_left_only = true;
        break;
      }
      emit_left_only = !probe_null && !build_has_null_key_;
      break;
  }
  if (emit_left_only) {
    for (int c = 0; c < left_width; ++c) {
      out->column(c).AppendFrom(probe_batch_.column(c), i);
    }
    ++emitted;
  }
  return emitted;
}

Status HashJoinNode::NextBatchImpl(RowBatch* out, bool* eof) {
  if (materialized_) {
    // The parallel probe (or mirrored build) already materialized the whole
    // result; emit it in batch-sized slices.
    size_t end = pending_pos_ + static_cast<size_t>(RowBatch::kDefaultCapacity);
    if (end > pending_.size()) end = pending_.size();
    for (; pending_pos_ < end; ++pending_pos_) {
      out->AppendRow(std::move(pending_[pending_pos_]));
    }
    *eof = out->empty();
    return Status::OK();
  }
  int64_t emitted = 0;
  while (emitted < RowBatch::kDefaultCapacity) {
    if (probe_pos_ >= probe_batch_.num_rows()) {
      if (left_done_) break;
      bool left_eof = false;
      NESTRA_RETURN_NOT_OK(left_->NextBatch(&probe_batch_, &left_eof));
      if (left_eof) {
        left_done_ = true;
        break;
      }
      probe_pos_ = 0;
      probe_count_ += probe_batch_.num_rows();
      HashProbeBatch();
    }
    while (probe_pos_ < probe_batch_.num_rows() &&
           emitted < RowBatch::kDefaultCapacity) {
      emitted += ProbeBatchRow(probe_pos_, out);
      ++probe_pos_;
    }
  }
  out->set_num_rows(emitted);
  *eof = out->empty();
  return Status::OK();
}

void HashJoinNode::CloseImpl() {
  stats_.build_rows = build_rows_;
  stats_.probe_rows = probe_count_;
  ReleaseMem(charged_mem_);
  partitions_.clear();
  pending_.clear();
  flat_built_ = false;
  flat_rows_.clear();
  flat_hash_.clear();
  flat_head_.clear();
  flat_next_.clear();
  flat_candidates_.clear();
  perfect_built_ = false;
  perfect_head_.clear();
  materialized_ = false;
  left_->Close();
  right_->Close();
}

}  // namespace nestra
