#include "exec/hash_join.h"

#include <utility>

#include "common/check.h"
#include "common/thread_pool.h"

namespace nestra {

HashJoinNode::HashJoinNode(ExecNodePtr left, ExecNodePtr right,
                           JoinType join_type, std::vector<EquiPair> equi,
                           ExprPtr residual, int num_threads)
    : left_(std::move(left)),
      right_(std::move(right)),
      join_type_(join_type),
      equi_(std::move(equi)),
      residual_(std::move(residual)),
      num_threads_(num_threads < 1 ? 1 : num_threads) {
  // Schema is known at construction: joins never rename.
  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  if (join_type_ == JoinType::kInner || join_type_ == JoinType::kLeftOuter) {
    Schema padded = rs;
    if (join_type_ == JoinType::kLeftOuter) {
      // Outer padding makes every right field nullable.
      std::vector<Field> fields = rs.fields();
      for (Field& f : fields) f.nullable = true;
      padded = Schema(std::move(fields));
    }
    schema_ = Schema::Concat(ls, padded);
  } else {
    schema_ = ls;
  }
  right_width_ = rs.num_fields();
}

Status HashJoinNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(left_->Open());
  NESTRA_RETURN_NOT_OK(right_->Open());

  const Schema& ls = left_->output_schema();
  const Schema& rs = right_->output_schema();
  left_key_idx_.clear();
  right_key_idx_.clear();
  for (const EquiPair& p : equi_) {
    NESTRA_ASSIGN_OR_RETURN(int li, ls.Resolve(p.left));
    NESTRA_ASSIGN_OR_RETURN(int ri, rs.Resolve(p.right));
    left_key_idx_.push_back(li);
    right_key_idx_.push_back(ri);
  }
  // Equi pairs come in matched (left, right) columns.
  NESTRA_DCHECK(left_key_idx_.size() == right_key_idx_.size());
  NESTRA_ASSIGN_OR_RETURN(
      bound_residual_,
      BoundPredicate::Make(residual_.get(), Schema::Concat(ls, rs)));

  NESTRA_RETURN_NOT_OK(BuildTable());

  pending_.clear();
  pending_pos_ = 0;
  left_done_ = false;
  probe_count_ = 0;
  if (num_threads_ > 1) {
    NESTRA_RETURN_NOT_OK(ParallelProbe());
  }
  return Status::OK();
}

Status HashJoinNode::BuildTable() {
  build_has_null_key_ = false;
  build_rows_ = 0;

  // Drain the child serially (Next is a serial protocol), then hash and
  // partition the materialized rows in parallel.
  std::vector<Row> rows;
  {
    Row row;
    bool eof = false;
    while (true) {
      NESTRA_RETURN_NOT_OK(right_->Next(&row, &eof));
      if (eof) break;
      rows.push_back(std::move(row));
      row = Row();
    }
  }
  build_rows_ = static_cast<int64_t>(rows.size());

  const int64_t n = build_rows_;
  const size_t num_parts = num_threads_ > 1 ? static_cast<size_t>(num_threads_)
                                            : size_t{1};
  partitions_.assign(num_parts, Buckets{});
  if (n == 0) return Status::OK();

  std::vector<size_t> hashes(static_cast<size_t>(n));
  std::vector<uint8_t> has_null(static_cast<size_t>(n), 0);
  ParallelForMorsels(n, num_threads_, [&](int64_t, int64_t begin,
                                          int64_t end) {
    for (int64_t i = begin; i < end; ++i) {
      const Row& r = rows[static_cast<size_t>(i)];
      bool null_key = false;
      for (const int idx : right_key_idx_) {
        if (r[idx].is_null()) null_key = true;
      }
      has_null[static_cast<size_t>(i)] = null_key ? 1 : 0;
      if (!null_key) {
        hashes[static_cast<size_t>(i)] = SqlKeyHashOn(r, right_key_idx_);
      }
    }
  });
  for (int64_t i = 0; i < n; ++i) {
    // A NULL build key can never satisfy an equality; remember it for the
    // null-aware antijoin, drop it otherwise.
    if (has_null[static_cast<size_t>(i)] != 0) build_has_null_key_ = true;
  }

  // Each partition owner scans the rows in arrival order and inserts the
  // ones hashing to it, so bucket candidate order is identical to a serial
  // build no matter how partitions are scheduled.
  ParallelForEach(static_cast<int64_t>(num_parts), num_threads_,
                  [&](int64_t p) {
                    Buckets& buckets = partitions_[static_cast<size_t>(p)];
                    for (int64_t i = 0; i < n; ++i) {
                      const size_t si = static_cast<size_t>(i);
                      if (has_null[si] != 0) continue;
                      if (hashes[si] % num_parts !=
                          static_cast<size_t>(p)) {
                        continue;
                      }
                      Row& row = rows[si];
                      std::vector<Value> key;
                      key.reserve(right_key_idx_.size());
                      for (const int idx : right_key_idx_) {
                        key.push_back(row[idx]);
                      }
                      buckets[std::move(key)].push_back(std::move(row));
                    }
                  });
  return Status::OK();
}

void HashJoinNode::ProbeRow(const Row& left_row, std::vector<Row>* out) const {
  const std::vector<Row>* candidates = nullptr;
  bool probe_null = false;
  {
    std::vector<Value> key;
    key.reserve(left_key_idx_.size());
    for (const int idx : left_key_idx_) {
      if (left_row[idx].is_null()) probe_null = true;
      key.push_back(left_row[idx]);
    }
    if (!probe_null) {
      const size_t h = SqlValueKeyHash{}(key);
      const Buckets& buckets = partitions_[h % partitions_.size()];
      const auto it = buckets.find(key);
      if (it != buckets.end()) candidates = &it->second;
    }
  }

  bool matched = false;
  if (candidates != nullptr) {
    for (const Row& right_row : *candidates) {
      Row combined = Row::Concat(left_row, right_row);
      if (!bound_residual_.Matches(combined)) continue;
      matched = true;
      if (join_type_ == JoinType::kInner ||
          join_type_ == JoinType::kLeftOuter) {
        // Joins never rename: the concatenated row is exactly as wide as
        // the schema fixed at construction.
        NESTRA_DCHECK(combined.size() == schema_.num_fields());
        out->push_back(std::move(combined));
        continue;
      }
      // Semi/anti flavors decide on the first residual-passing match.
      break;
    }
  }

  switch (join_type_) {
    case JoinType::kInner:
      break;  // matches already emitted
    case JoinType::kLeftSemi:
      if (matched) out->push_back(left_row);
      break;
    case JoinType::kLeftOuter:
      if (!matched) {
        // NULL padding must line up with the right side's full width.
        NESTRA_DCHECK(left_row.size() + right_width_ == schema_.num_fields());
        out->push_back(Row::Concat(left_row, Row::Nulls(right_width_)));
      }
      break;
    case JoinType::kLeftAnti:
      if (!matched) out->push_back(left_row);
      break;
    case JoinType::kLeftAntiNullAware: {
      if (matched) break;
      // NOT IN semantics (single conceptual key): empty set keeps the row;
      // otherwise NULL probe key or NULL in the build keys -> Unknown ->
      // dropped.
      if (build_rows_ == 0) {
        out->push_back(left_row);
        break;
      }
      if (!probe_null && !build_has_null_key_) out->push_back(left_row);
      break;
    }
  }
}

Status HashJoinNode::ParallelProbe() {
  std::vector<Row> probe_rows;
  {
    Row row;
    bool eof = false;
    while (true) {
      NESTRA_RETURN_NOT_OK(left_->Next(&row, &eof));
      if (eof) break;
      probe_rows.push_back(std::move(row));
      row = Row();
    }
  }
  const int64_t n = static_cast<int64_t>(probe_rows.size());
  probe_count_ = n;
  left_done_ = true;

  // Per-morsel output slots, concatenated in morsel order: morsels are
  // contiguous input ranges, so the result equals the serial probe order.
  std::vector<std::vector<Row>> slots(
      static_cast<size_t>(MorselCount(n, num_threads_)));
  ParallelForMorsels(n, num_threads_,
                     [&](int64_t m, int64_t begin, int64_t end) {
                       std::vector<Row>& out = slots[static_cast<size_t>(m)];
                       for (int64_t i = begin; i < end; ++i) {
                         ProbeRow(probe_rows[static_cast<size_t>(i)], &out);
                       }
                     });

  size_t total = 0;
  for (const std::vector<Row>& s : slots) total += s.size();
  pending_.clear();
  pending_.reserve(total);
  for (std::vector<Row>& s : slots) {
    for (Row& r : s) pending_.push_back(std::move(r));
  }
  pending_pos_ = 0;
  return Status::OK();
}

Status HashJoinNode::NextImpl(Row* out, bool* eof) {
  while (pending_pos_ >= pending_.size()) {
    if (left_done_) {
      *eof = true;
      return Status::OK();
    }
    pending_.clear();
    pending_pos_ = 0;
    Row left_row;
    bool left_eof = false;
    NESTRA_RETURN_NOT_OK(left_->Next(&left_row, &left_eof));
    if (left_eof) {
      left_done_ = true;
      continue;
    }
    ++probe_count_;
    ProbeRow(left_row, &pending_);
  }
  *out = std::move(pending_[pending_pos_++]);
  *eof = false;
  return Status::OK();
}

void HashJoinNode::CloseImpl() {
  stats_.build_rows = build_rows_;
  stats_.probe_rows = probe_count_;
  partitions_.clear();
  pending_.clear();
  left_->Close();
  right_->Close();
}

}  // namespace nestra
