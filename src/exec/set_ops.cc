#include "exec/set_ops.h"

#include <unordered_set>

#include "common/hash_key.h"

namespace nestra {

namespace {

// SQL-comparator semantics (common/hash_key.h): NULL rows coincide and
// numerically equal int64/float64 values coincide, matching UNION/EXCEPT/
// INTERSECT duplicate elimination.
using RowSet = std::unordered_set<Row, SqlRowHash, SqlRowEq>;

}  // namespace

Status CheckSetOpCompatible(const Schema& left, const Schema& right) {
  if (left.num_fields() != right.num_fields()) {
    return Status::InvalidArgument(
        "set operation inputs have different arities: " +
        std::to_string(left.num_fields()) + " vs " +
        std::to_string(right.num_fields()));
  }
  for (int i = 0; i < left.num_fields(); ++i) {
    if (left.field(i).type != right.field(i).type) {
      return Status::TypeError(
          "set operation column " + std::to_string(i) + " types differ: " +
          TypeIdToString(left.field(i).type) + " vs " +
          TypeIdToString(right.field(i).type));
    }
  }
  return Status::OK();
}

Result<Table> UnionAll(Table left, const Table& right) {
  NESTRA_RETURN_NOT_OK(CheckSetOpCompatible(left.schema(), right.schema()));
  left.Reserve(static_cast<size_t>(left.num_rows() + right.num_rows()));
  for (const Row& r : right.rows()) left.AppendUnchecked(r);
  return left;
}

Result<Table> UnionDistinct(const Table& left, const Table& right) {
  NESTRA_RETURN_NOT_OK(CheckSetOpCompatible(left.schema(), right.schema()));
  Table out{left.schema()};
  RowSet seen;
  for (const Table* t : {&left, &right}) {
    for (const Row& r : t->rows()) {
      if (seen.insert(r).second) out.AppendUnchecked(r);
    }
  }
  return out;
}

Result<Table> Intersect(const Table& left, const Table& right) {
  NESTRA_RETURN_NOT_OK(CheckSetOpCompatible(left.schema(), right.schema()));
  RowSet right_rows(right.rows().begin(), right.rows().end());
  Table out{left.schema()};
  RowSet emitted;
  for (const Row& r : left.rows()) {
    if (right_rows.count(r) > 0 && emitted.insert(r).second) {
      out.AppendUnchecked(r);
    }
  }
  return out;
}

Result<Table> Except(const Table& left, const Table& right) {
  NESTRA_RETURN_NOT_OK(CheckSetOpCompatible(left.schema(), right.schema()));
  RowSet right_rows(right.rows().begin(), right.rows().end());
  Table out{left.schema()};
  RowSet emitted;
  for (const Row& r : left.rows()) {
    if (right_rows.count(r) == 0 && emitted.insert(r).second) {
      out.AppendUnchecked(r);
    }
  }
  return out;
}

}  // namespace nestra
