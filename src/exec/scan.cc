#include "exec/scan.h"

#include "storage/io_sim.h"

namespace nestra {

ScanNode::ScanNode(const Table* table, const std::string& alias)
    : table_(table),
      schema_(alias.empty() ? table->schema()
                            : table->schema().Qualify(alias)),
      alias_(alias) {}

void ScanNode::ChargeIo(IoSim* sim, int64_t row) {
  switch (sim->SeqRow(table_, row)) {
    case IoAccess::kHit:
      ++stats_.io_hits;
      break;
    case IoAccess::kSeqMiss:
      ++stats_.io_seq_misses;
      break;
    case IoAccess::kRandomMiss:
      ++stats_.io_random_misses;
      break;
    case IoAccess::kNone:
      break;
  }
}

Status ScanNode::NextImpl(Row* out, bool* eof) {
  if (pos_ >= table_->num_rows()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  if (IoSim* sim = IoSim::Get()) ChargeIo(sim, pos_);
  *out = table_->rows()[pos_++];
  return Status::OK();
}

Status ScanNode::NextBatchImpl(RowBatch* out, bool* eof) {
  const int64_t total = table_->num_rows();
  int64_t end = pos_ + RowBatch::kDefaultCapacity;
  if (end > total) end = total;
  if (IoSim* sim = IoSim::Get()) {
    // Bulk page-level charging; totals, LRU state and per-thread cache are
    // exactly what the row pipeline's per-row loop produces.
    const IoSim::RangeCounts counts = sim->SeqRange(table_, pos_, end);
    stats_.io_hits += counts.hits;
    stats_.io_seq_misses += counts.seq_misses;
    stats_.io_random_misses += counts.random_misses;
  }
  // Row-major fill: each source Row's heap block is touched once. The
  // column-major order would re-walk every scattered Row allocation once
  // per column — measurably slower than the row pipeline's single copy.
  const std::vector<Row>& rows = table_->rows();
  const int ncols = out->num_columns();
  for (int64_t r = pos_; r < end; ++r) {
    const Row& row = rows[r];
    for (int c = 0; c < ncols; ++c) {
      out->column(c).Append(row[c]);
    }
  }
  out->set_num_rows(end - pos_);
  pos_ = end;
  *eof = out->empty();
  return Status::OK();
}

}  // namespace nestra
