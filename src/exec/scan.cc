#include "exec/scan.h"

#include "storage/io_sim.h"

namespace nestra {

ScanNode::ScanNode(const Table* table, const std::string& alias)
    : table_(table),
      schema_(alias.empty() ? table->schema()
                            : table->schema().Qualify(alias)),
      alias_(alias) {}

Status ScanNode::NextImpl(Row* out, bool* eof) {
  if (pos_ >= table_->num_rows()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  if (IoSim* sim = IoSim::Get()) {
    switch (sim->SeqRow(table_, pos_)) {
      case IoAccess::kHit:
        ++stats_.io_hits;
        break;
      case IoAccess::kSeqMiss:
        ++stats_.io_seq_misses;
        break;
      case IoAccess::kRandomMiss:
        ++stats_.io_random_misses;
        break;
      case IoAccess::kNone:
        break;
    }
  }
  *out = table_->rows()[pos_++];
  return Status::OK();
}

}  // namespace nestra
