#include "exec/scan.h"

#include "storage/io_sim.h"

namespace nestra {

ScanNode::ScanNode(const Table* table, const std::string& alias)
    : table_(table),
      schema_(alias.empty() ? table->schema()
                            : table->schema().Qualify(alias)) {}

Status ScanNode::Next(Row* out, bool* eof) {
  if (pos_ >= table_->num_rows()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  if (IoSim* sim = IoSim::Get()) sim->SeqRow(table_, pos_);
  *out = table_->rows()[pos_++];
  return Status::OK();
}

}  // namespace nestra
