#include "exec/exec_node.h"

namespace nestra {

Result<Table> CollectTable(ExecNode* node) {
  NESTRA_RETURN_NOT_OK(node->Open());
  Table out(node->output_schema());
  Row row;
  bool eof = false;
  while (true) {
    NESTRA_RETURN_NOT_OK(node->Next(&row, &eof));
    if (eof) break;
    out.AppendUnchecked(std::move(row));
    row = Row();
  }
  node->Close();
  return out;
}

Status TableSourceNode::Next(Row* out, bool* eof) {
  if (pos_ >= table_.num_rows()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = table_.rows()[pos_++];
  return Status::OK();
}

}  // namespace nestra
