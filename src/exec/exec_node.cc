#include "exec/exec_node.h"

#include <chrono>

#include "common/memory_tracker.h"

namespace nestra {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

const char* QueryPhaseLabel(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kUnattributed:
      return "unattributed";
    case QueryPhase::kUnnestJoin:
      return "unnest-join";
    case QueryPhase::kNest:
      return "nest";
    case QueryPhase::kLinkingSelection:
      return "linking-selection";
    case QueryPhase::kPostProcessing:
      return "post-processing";
  }
  return "unknown";
}

const char* PipelineRoleLabel(PipelineRole role) {
  switch (role) {
    case PipelineRole::kSource:
      return "source";
    case PipelineRole::kStreaming:
      return "streaming";
    case PipelineRole::kSerialStreaming:
      return "serial-streaming";
    case PipelineRole::kBreaker:
      return "breaker";
  }
  return "unknown";
}

Status ExecNode::Open() {
  // A node re-used across Open() calls must not leak the previous run's
  // counters (or its timings) into this run's profile snapshot; open_calls
  // is the one cumulative field, so re-use stays visible.
  const int64_t open_calls = stats_.open_calls;
  stats_ = OperatorStats{};
  stats_.open_calls = open_calls + 1;
  adapter_saw_eof_ = false;
  if (!timing_) return OpenImpl();
  const Clock::time_point start = Clock::now();
  Status s = OpenImpl();
  stats_.open_seconds += SecondsSince(start);
  return s;
}

Status ExecNode::Next(Row* out, bool* eof) {
  ++stats_.next_calls;
  if (!timing_) {
    Status s = NextImpl(out, eof);
    if (s.ok() && !*eof) ++stats_.rows_out;
    return s;
  }
  const Clock::time_point start = Clock::now();
  Status s = NextImpl(out, eof);
  stats_.next_seconds += SecondsSince(start);
  if (s.ok() && !*eof) ++stats_.rows_out;
  return s;
}

Status ExecNode::NextBatch(RowBatch* out, bool* eof) {
  ++stats_.next_calls;
  out->Reset(output_schema());
  if (!timing_) {
    Status s = NextBatchImpl(out, eof);
    if (s.ok() && !out->empty()) {
      stats_.rows_out += out->num_rows();
      ++stats_.batches_out;
      RecordBatchBytes(*out);
    }
    return s;
  }
  const Clock::time_point start = Clock::now();
  Status s = NextBatchImpl(out, eof);
  stats_.next_seconds += SecondsSince(start);
  if (s.ok() && !out->empty()) {
    stats_.rows_out += out->num_rows();
    ++stats_.batches_out;
    RecordBatchBytes(*out);
  }
  return s;
}

void ExecNode::RecordBatchBytes(const RowBatch& batch) {
  // The column vectors this node just filled are its transient working
  // set; the largest one is the node's batch-level memory peak. One
  // ByteSize walk per ~1024-row batch, never per row.
  const int64_t bytes = batch.ByteSize();
  if (bytes > stats_.peak_mem_bytes) stats_.peak_mem_bytes = bytes;
}

Status ExecNode::NextBatchImpl(RowBatch* out, bool* eof) {
  *eof = false;
  if (adapter_saw_eof_) {
    *eof = true;
    return Status::OK();
  }
  Row row;
  bool row_eof = false;
  while (out->num_rows() < RowBatch::kDefaultCapacity) {
    NESTRA_RETURN_NOT_OK(NextImpl(&row, &row_eof));
    if (row_eof) {
      adapter_saw_eof_ = true;
      break;
    }
    out->AppendRow(std::move(row));
    row = Row();
  }
  if (!out->empty()) ++stats_.adapter_batches;
  *eof = out->empty();
  return Status::OK();
}

void ExecNode::Close() {
  if (!timing_) {
    CloseImpl();
    return;
  }
  const Clock::time_point start = Clock::now();
  CloseImpl();
  stats_.open_seconds += SecondsSince(start);
}

void ExecNode::SetPhaseRecursive(QueryPhase phase) {
  if (phase_ == QueryPhase::kUnattributed) phase_ = phase;
  for (ExecNode* child : children()) child->SetPhaseRecursive(phase);
}

void ExecNode::EnableTimingRecursive() {
  timing_ = true;
  for (ExecNode* child : children()) child->EnableTimingRecursive();
}

namespace {
Status DrainAllRowsImpl(ExecNode* node, bool vectorized,
                        std::vector<Row>* rows) {
  if (vectorized) {
    // A TableSource already holds materialized rows; pulling them through
    // a batch would transpose and re-materialize every one. The batch
    // protocol hands over rows in bulk, so take them directly.
    if (auto* source = dynamic_cast<TableSourceNode*>(node)) {
      if (source->TakeAllRows(rows)) return Status::OK();
    }
    RowBatch batch;
    bool eof = false;
    while (true) {
      NESTRA_RETURN_NOT_OK(node->NextBatch(&batch, &eof));
      if (eof) break;
      for (int64_t i = 0; i < batch.num_rows(); ++i) {
        rows->push_back(batch.TakeRow(i));
      }
    }
    return Status::OK();
  }
  Row row;
  bool eof = false;
  while (true) {
    NESTRA_RETURN_NOT_OK(node->Next(&row, &eof));
    if (eof) break;
    rows->push_back(std::move(row));
    row = Row();
  }
  return Status::OK();
}
}  // namespace

Status DrainAllRows(ExecNode* node, bool vectorized, std::vector<Row>* rows,
                    int64_t* bytes) {
  const size_t before = rows->size();
  Status s = DrainAllRowsImpl(node, vectorized, rows);
  if (s.ok() && bytes != nullptr) {
    // One suffix walk per drain (a materialization boundary, never a
    // per-row path). RowBytes is a pure function of row content, so both
    // engines report identical drain bytes.
    for (size_t i = before; i < rows->size(); ++i) {
      *bytes += RowBytes((*rows)[i]);
    }
  }
  return s;
}

Result<Table> CollectTable(ExecNode* node, bool vectorized, int64_t* bytes) {
  NESTRA_RETURN_NOT_OK(node->Open());
  Table out(node->output_schema());
  if (vectorized) {
    RowBatch batch;
    bool eof = false;
    while (true) {
      NESTRA_RETURN_NOT_OK(node->NextBatch(&batch, &eof));
      if (eof) break;
      for (int64_t i = 0; i < batch.num_rows(); ++i) {
        out.AppendUnchecked(batch.TakeRow(i));
        if (bytes != nullptr) *bytes += RowBytes(out.rows().back());
      }
    }
    node->Close();
    return out;
  }
  Row row;
  bool eof = false;
  while (true) {
    NESTRA_RETURN_NOT_OK(node->Next(&row, &eof));
    if (eof) break;
    out.AppendUnchecked(std::move(row));
    if (bytes != nullptr) *bytes += RowBytes(out.rows().back());
    row = Row();
  }
  node->Close();
  return out;
}

Status TableSourceNode::OpenImpl() {
  // TakeAllRows only ever runs against an opened node, so an Open that
  // sees taken_ is a reopen — and the rows are gone.
  if (taken_) {
    return Status::Internal(
        "TableSource reopened after TakeAllRows moved its rows out; the "
        "replay would be silently empty");
  }
  pos_ = 0;
  if (charged_bytes_ == 0) {
    charged_bytes_ = TableBytes(table_);
    if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
      NESTRA_RETURN_NOT_OK(mem->Charge(charged_bytes_));
    }
  }
  stats_.mem_bytes = charged_bytes_;
  stats_.peak_mem_bytes = charged_bytes_;
  return Status::OK();
}

void TableSourceNode::CloseImpl() { ReleaseCharge(); }

void TableSourceNode::ReleaseCharge() {
  if (charged_bytes_ == 0) return;
  if (QueryMemoryTracker* mem = CurrentQueryMemory()) {
    mem->Release(charged_bytes_);
  }
  charged_bytes_ = 0;
  stats_.mem_bytes = 0;
}

Status TableSourceNode::NextImpl(Row* out, bool* eof) {
  if (pos_ >= table_.num_rows()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = table_.rows()[pos_++];
  return Status::OK();
}

Status TableSourceNode::NextBatchImpl(RowBatch* out, bool* eof) {
  const int64_t total = table_.num_rows();
  int64_t end = pos_ + RowBatch::kDefaultCapacity;
  if (end > total) end = total;
  const std::vector<Row>& rows = table_.rows();
  for (; pos_ < end; ++pos_) {
    out->AppendRow(rows[pos_]);
  }
  *eof = out->empty();
  return Status::OK();
}

}  // namespace nestra
