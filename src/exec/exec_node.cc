#include "exec/exec_node.h"

#include <chrono>

namespace nestra {

namespace {
using Clock = std::chrono::steady_clock;

double SecondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}
}  // namespace

const char* QueryPhaseLabel(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kUnattributed:
      return "unattributed";
    case QueryPhase::kUnnestJoin:
      return "unnest-join";
    case QueryPhase::kNest:
      return "nest";
    case QueryPhase::kLinkingSelection:
      return "linking-selection";
    case QueryPhase::kPostProcessing:
      return "post-processing";
  }
  return "unknown";
}

Status ExecNode::Open() {
  ++stats_.open_calls;
  if (!timing_) return OpenImpl();
  const Clock::time_point start = Clock::now();
  Status s = OpenImpl();
  stats_.open_seconds += SecondsSince(start);
  return s;
}

Status ExecNode::Next(Row* out, bool* eof) {
  ++stats_.next_calls;
  if (!timing_) {
    Status s = NextImpl(out, eof);
    if (s.ok() && !*eof) ++stats_.rows_out;
    return s;
  }
  const Clock::time_point start = Clock::now();
  Status s = NextImpl(out, eof);
  stats_.next_seconds += SecondsSince(start);
  if (s.ok() && !*eof) ++stats_.rows_out;
  return s;
}

void ExecNode::Close() {
  if (!timing_) {
    CloseImpl();
    return;
  }
  const Clock::time_point start = Clock::now();
  CloseImpl();
  stats_.open_seconds += SecondsSince(start);
}

void ExecNode::SetPhaseRecursive(QueryPhase phase) {
  if (phase_ == QueryPhase::kUnattributed) phase_ = phase;
  for (ExecNode* child : children()) child->SetPhaseRecursive(phase);
}

void ExecNode::EnableTimingRecursive() {
  timing_ = true;
  for (ExecNode* child : children()) child->EnableTimingRecursive();
}

Result<Table> CollectTable(ExecNode* node) {
  NESTRA_RETURN_NOT_OK(node->Open());
  Table out(node->output_schema());
  Row row;
  bool eof = false;
  while (true) {
    NESTRA_RETURN_NOT_OK(node->Next(&row, &eof));
    if (eof) break;
    out.AppendUnchecked(std::move(row));
    row = Row();
  }
  node->Close();
  return out;
}

Status TableSourceNode::NextImpl(Row* out, bool* eof) {
  if (pos_ >= table_.num_rows()) {
    *eof = true;
    return Status::OK();
  }
  *eof = false;
  *out = table_.rows()[pos_++];
  return Status::OK();
}

}  // namespace nestra
