#ifndef NESTRA_EXEC_SCAN_H_
#define NESTRA_EXEC_SCAN_H_

#include <string>

#include "exec/exec_node.h"

namespace nestra {

class IoSim;

/// \brief Full scan over a borrowed base table, qualifying column names with
/// an alias ("orders.o_orderkey" or "o.o_orderkey").
///
/// The table must outlive the node (tables are owned by the Catalog).
class ScanNode final : public ExecNode {
 public:
  /// `alias` may be empty, in which case field names pass through unchanged.
  ScanNode(const Table* table, const std::string& alias);

  const Schema& output_schema() const override { return schema_; }
  std::string name() const override { return "Scan"; }
  PipelineRole role() const override { return PipelineRole::kSource; }
  std::string detail() const override { return alias_; }

 protected:
  Status OpenImpl() override {
    pos_ = 0;
    return Status::OK();
  }
  Status NextImpl(Row* out, bool* eof) override;
  Status NextBatchImpl(RowBatch* out, bool* eof) override;
  void CloseImpl() override {}

 private:
  // Charges one sequential page access for row `row` to this node's stats.
  void ChargeIo(IoSim* sim, int64_t row);

 private:
  const Table* table_;
  Schema schema_;
  std::string alias_;
  int64_t pos_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_EXEC_SCAN_H_
