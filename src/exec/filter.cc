#include "exec/filter.h"

namespace nestra {

Status FilterNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  NESTRA_ASSIGN_OR_RETURN(
      bound_, BoundPredicate::Make(predicate_.get(), child_->output_schema()));
  vectorizable_ = VectorizedPredicate::Compile(
      predicate_.get(), child_->output_schema(), &vectorized_);
  return Status::OK();
}

Status FilterNode::NextImpl(Row* out, bool* eof) {
  while (true) {
    NESTRA_RETURN_NOT_OK(child_->Next(out, eof));
    if (*eof) return Status::OK();
    if (bound_.Matches(*out)) return Status::OK();
  }
}

Status FilterNode::NextBatchImpl(RowBatch* out, bool* eof) {
  if (!vectorizable_) return ExecNode::NextBatchImpl(out, eof);
  // Keep pulling child batches until some rows survive (or the child ends)
  // so empty batches never leak to the parent before eof.
  while (true) {
    bool child_eof = false;
    NESTRA_RETURN_NOT_OK(child_->NextBatch(&input_, &child_eof));
    if (child_eof) break;
    vectorized_.Select(input_, &sel_);
    if (sel_.empty()) continue;
    const int ncols = out->num_columns();
    for (int c = 0; c < ncols; ++c) {
      const ColumnVector& in = input_.column(c);
      ColumnVector& dst = out->column(c);
      for (const int32_t i : sel_) {
        dst.AppendFrom(in, i);
      }
    }
    out->set_num_rows(static_cast<int64_t>(sel_.size()));
    break;
  }
  *eof = out->empty();
  return Status::OK();
}

}  // namespace nestra
