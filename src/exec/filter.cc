#include "exec/filter.h"

namespace nestra {

Status FilterNode::OpenImpl() {
  NESTRA_RETURN_NOT_OK(child_->Open());
  NESTRA_ASSIGN_OR_RETURN(
      bound_, BoundPredicate::Make(predicate_.get(), child_->output_schema()));
  return Status::OK();
}

Status FilterNode::NextImpl(Row* out, bool* eof) {
  while (true) {
    NESTRA_RETURN_NOT_OK(child_->Next(out, eof));
    if (*eof) return Status::OK();
    if (bound_.Matches(*out)) return Status::OK();
  }
}

}  // namespace nestra
