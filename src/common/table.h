#ifndef NESTRA_COMMON_TABLE_H_
#define NESTRA_COMMON_TABLE_H_

#include <string>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/status.h"

namespace nestra {

/// \brief An in-memory flat relation: a schema plus a bag of rows.
///
/// Tables are the materialized interchange format between pipeline stages;
/// the volcano operators stream Rows and only materialize at pipeline
/// breakers.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema) : schema_(std::move(schema)) {}
  Table(Schema schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& rows() { return rows_; }
  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }

  /// Appends a row; fails if the arity does not match the schema.
  Status Append(Row row);

  /// Unchecked append for hot paths (arity must match).
  void AppendUnchecked(Row row) { rows_.push_back(std::move(row)); }

  void Reserve(size_t n) { rows_.reserve(n); }

  /// Projection onto the named columns (exact or unqualified names).
  Result<Table> Project(const std::vector<std::string>& columns) const;

  /// Bag equality ignoring row order (sorts copies; O(n log n)).
  static bool BagEquals(const Table& a, const Table& b);

  /// Rows sorted by full-row total order; used by BagEquals and tests.
  Table Sorted() const;

  std::string ToString(int max_rows = 50) const;

 private:
  Schema schema_;
  std::vector<Row> rows_;
};

}  // namespace nestra

#endif  // NESTRA_COMMON_TABLE_H_
