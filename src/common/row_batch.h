#ifndef NESTRA_COMMON_ROW_BATCH_H_
#define NESTRA_COMMON_ROW_BATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/row.h"
#include "common/schema.h"
#include "common/value.h"

namespace nestra {

/// \brief One column of a RowBatch: type-specialized storage plus a
/// per-entry null byte.
///
/// The declared schema type picks the storage vector (int64 for kInt64 and
/// kDate, double for kFloat64, std::string for kString). Values are not
/// type-checked at the Table layer, so a cell whose runtime type disagrees
/// with the declaration (e.g. a double in an int column) flips the column
/// into generic mode — a plain std::vector<Value> — preserving the exact
/// Value that a row-at-a-time pipeline would have carried. Reconstructed
/// Values are bit-identical either way: kDate storage round-trips through
/// Value::Int64, whose representation Value::Date shares.
///
/// The append/read methods are defined inline: they run once per cell on
/// the hot path of every vectorized operator.
class ColumnVector {
 public:
  ColumnVector() = default;

  /// Re-types the column and clears it; storage capacity is kept.
  void Reset(TypeId type);
  void Clear();

  TypeId type() const { return type_; }
  bool generic() const { return generic_; }
  int64_t size() const { return static_cast<int64_t>(nulls_.size()); }

  void Append(const Value& v) {
    if (v.is_null()) {
      AppendNull();
      return;
    }
    if (!generic_ && !MatchesStorage(type_, v)) ConvertToGeneric();
    if (generic_) {
      values_.push_back(v);
      nulls_.push_back(0);
      return;
    }
    switch (type_) {
      case TypeId::kInt64:
      case TypeId::kDate:
        ints_.push_back(v.int64());
        break;
      case TypeId::kFloat64:
        doubles_.push_back(v.float64());
        break;
      case TypeId::kString:
        strings_.push_back(v.string());
        break;
    }
    nulls_.push_back(0);
  }

  void Append(Value&& v) {
    if (v.is_null()) {
      AppendNull();
      return;
    }
    if (!generic_ && !MatchesStorage(type_, v)) ConvertToGeneric();
    if (generic_) {
      values_.push_back(std::move(v));
      nulls_.push_back(0);
      return;
    }
    switch (type_) {
      case TypeId::kInt64:
      case TypeId::kDate:
        ints_.push_back(v.int64());
        break;
      case TypeId::kFloat64:
        doubles_.push_back(v.float64());
        break;
      case TypeId::kString:
        strings_.push_back(std::move(const_cast<std::string&>(v.string())));
        break;
    }
    nulls_.push_back(0);
  }

  void AppendNull() {
    if (generic_) {
      values_.push_back(Value::Null());
      nulls_.push_back(1);
      return;
    }
    switch (type_) {
      case TypeId::kInt64:
      case TypeId::kDate:
        ints_.push_back(0);
        break;
      case TypeId::kFloat64:
        doubles_.push_back(0.0);
        break;
      case TypeId::kString:
        strings_.emplace_back();
        break;
    }
    nulls_.push_back(1);
  }

  /// Typed appends for kernels that already know the storage class. The
  /// caller must have checked `!generic()` and the column type.
  void AppendInt64(int64_t v) {
    ints_.push_back(v);
    nulls_.push_back(0);
  }
  void AppendFloat64(double v) {
    doubles_.push_back(v);
    nulls_.push_back(0);
  }

  /// Copies cell `i` of `src` into this column without routing through a
  /// Value when both sides share typed storage (the compaction / join
  /// emission fast path).
  void AppendFrom(const ColumnVector& src, int64_t i) {
    if (src.nulls_[i] != 0) {
      AppendNull();
      return;
    }
    if (generic_ || src.generic_ || type_ != src.type_) {
      Append(src.GetValue(i));
      return;
    }
    switch (type_) {
      case TypeId::kInt64:
      case TypeId::kDate:
        ints_.push_back(src.ints_[i]);
        break;
      case TypeId::kFloat64:
        doubles_.push_back(src.doubles_[i]);
        break;
      case TypeId::kString:
        strings_.push_back(src.strings_[i]);
        break;
    }
    nulls_.push_back(0);
  }

  bool IsNull(int64_t i) const { return nulls_[i] != 0; }
  const std::vector<uint8_t>& nulls() const { return nulls_; }

  /// Raw typed storage; valid only when `!generic()` and the type matches.
  /// Null slots hold a zero/empty placeholder.
  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<double>& doubles() const { return doubles_; }
  const std::vector<std::string>& strings() const { return strings_; }
  const std::vector<Value>& values() const { return values_; }

  /// Reconstructs the i-th cell as a Value (deep copy for strings).
  Value GetValue(int64_t i) const {
    if (nulls_[i] != 0) return Value::Null();
    if (generic_) return values_[i];
    switch (type_) {
      case TypeId::kInt64:
      case TypeId::kDate:
        // Value::Date shares Value::Int64's representation, so this is
        // bit-identical for both declared types.
        return Value::Int64(ints_[i]);
      case TypeId::kFloat64:
        return Value::Float64(doubles_[i]);
      case TypeId::kString:
        return Value::String(strings_[i]);
    }
    return Value::Null();
  }

  /// Logical byte footprint of the column: O(1) for typed numeric storage,
  /// O(n) over payloads for strings and generic columns. Deterministic —
  /// computed from entry counts and payload lengths, never from allocator
  /// capacity. Called once per batch at accounting boundaries, not per
  /// cell.
  int64_t ByteSize() const;

  /// Like GetValue but transfers ownership of string payloads out of the
  /// column (cell `i` is left empty). For sinks that materialize each batch
  /// row exactly once and then Reset the batch.
  Value TakeValue(int64_t i) {
    if (nulls_[i] != 0) return Value::Null();
    if (generic_) return std::move(values_[i]);
    switch (type_) {
      case TypeId::kInt64:
      case TypeId::kDate:
        return Value::Int64(ints_[i]);
      case TypeId::kFloat64:
        return Value::Float64(doubles_[i]);
      case TypeId::kString:
        return Value::String(std::move(strings_[i]));
    }
    return Value::Null();
  }

 private:
  // True when `v` can live in the typed storage for declared type `type`.
  static bool MatchesStorage(TypeId type, const Value& v) {
    switch (type) {
      case TypeId::kInt64:
      case TypeId::kDate:
        return v.is_int();
      case TypeId::kFloat64:
        return v.is_float();
      case TypeId::kString:
        return v.is_string();
    }
    return false;
  }

  // Moves the already-appended typed entries into values_ so mixed-type
  // columns keep exact row semantics. Out of line: cold by design.
  void ConvertToGeneric();

  TypeId type_ = TypeId::kInt64;
  bool generic_ = false;
  std::vector<uint8_t> nulls_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
  std::vector<Value> values_;
};

/// \brief A batch of rows in columnar layout, the unit of vectorized
/// execution (ExecNode::NextBatch).
///
/// A batch targets kDefaultCapacity rows; operators may emit fewer (a
/// filter after compaction) or occasionally more (a join finishing the
/// match list of its last probe row). Columns are positionally aligned
/// with the producing node's output schema.
class RowBatch {
 public:
  static constexpr int64_t kDefaultCapacity = 1024;

  RowBatch() = default;

  /// Points the batch at `schema` and clears it. The schema must outlive
  /// the batch. Cheap when the batch already uses the same schema object —
  /// the common case of one scratch batch per operator.
  void Reset(const Schema& schema);

  /// Drops all rows, keeping schema and storage capacity.
  void Clear();

  const Schema* schema() const { return schema_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  int64_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  ColumnVector& column(int i) { return columns_[i]; }
  const ColumnVector& column(int i) const { return columns_[i]; }

  /// After kernels appended cells directly to the columns, records the
  /// resulting row count. Every column must have exactly `n` entries.
  void set_num_rows(int64_t n) { num_rows_ = n; }

  void AppendRow(const Row& row) {
    for (int c = 0; c < static_cast<int>(columns_.size()); ++c) {
      columns_[c].Append(row[c]);
    }
    ++num_rows_;
  }

  void AppendRow(Row&& row) {
    for (int c = 0; c < static_cast<int>(columns_.size()); ++c) {
      columns_[c].Append(std::move(row[c]));
    }
    ++num_rows_;
  }

  /// Reconstructs row `i`; cell-for-cell identical to what the row
  /// pipeline would have produced.
  Row MaterializeRow(int64_t i) const {
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (const ColumnVector& col : columns_) {
      values.push_back(col.GetValue(i));
    }
    return Row(std::move(values));
  }

  /// Like MaterializeRow but moves string payloads out of the batch. Only
  /// for sinks that take every row at most once before the next Reset.
  Row TakeRow(int64_t i) {
    std::vector<Value> values;
    values.reserve(columns_.size());
    for (ColumnVector& col : columns_) {
      values.push_back(col.TakeValue(i));
    }
    return Row(std::move(values));
  }

  /// Sum of the columns' logical byte footprints (see
  /// ColumnVector::ByteSize).
  int64_t ByteSize() const;

  std::string ToString(int64_t max_rows = 10) const;

 private:
  const Schema* schema_ = nullptr;
  std::vector<ColumnVector> columns_;
  int64_t num_rows_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_COMMON_ROW_BATCH_H_
