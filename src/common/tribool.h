#ifndef NESTRA_COMMON_TRIBOOL_H_
#define NESTRA_COMMON_TRIBOOL_H_

namespace nestra {

/// \brief SQL three-valued logic.
///
/// Every predicate in the library evaluates to a TriBool. A WHERE clause (and
/// both the strict and the pseudo linking selection of the paper) keeps a
/// tuple only when the predicate is `kTrue`; `kUnknown` behaves like `kFalse`
/// for filtering but propagates differently through NOT/AND/OR.
enum class TriBool { kFalse = 0, kUnknown = 1, kTrue = 2 };

constexpr TriBool MakeTriBool(bool b) {
  return b ? TriBool::kTrue : TriBool::kFalse;
}

/// Kleene conjunction: F dominates, then U, then T.
constexpr TriBool And(TriBool a, TriBool b) {
  if (a == TriBool::kFalse || b == TriBool::kFalse) return TriBool::kFalse;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown) {
    return TriBool::kUnknown;
  }
  return TriBool::kTrue;
}

/// Kleene disjunction: T dominates, then U, then F.
constexpr TriBool Or(TriBool a, TriBool b) {
  if (a == TriBool::kTrue || b == TriBool::kTrue) return TriBool::kTrue;
  if (a == TriBool::kUnknown || b == TriBool::kUnknown) {
    return TriBool::kUnknown;
  }
  return TriBool::kFalse;
}

/// Kleene negation: NOT U = U.
constexpr TriBool Not(TriBool a) {
  switch (a) {
    case TriBool::kFalse:
      return TriBool::kTrue;
    case TriBool::kTrue:
      return TriBool::kFalse;
    case TriBool::kUnknown:
      return TriBool::kUnknown;
  }
  return TriBool::kUnknown;
}

/// SQL filter semantics: only definite truth passes.
constexpr bool IsTrue(TriBool a) { return a == TriBool::kTrue; }
constexpr bool IsFalse(TriBool a) { return a == TriBool::kFalse; }
constexpr bool IsUnknown(TriBool a) { return a == TriBool::kUnknown; }

constexpr const char* TriBoolToString(TriBool a) {
  switch (a) {
    case TriBool::kFalse:
      return "false";
    case TriBool::kTrue:
      return "true";
    case TriBool::kUnknown:
      return "unknown";
  }
  return "unknown";
}

}  // namespace nestra

#endif  // NESTRA_COMMON_TRIBOOL_H_
