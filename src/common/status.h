#ifndef NESTRA_COMMON_STATUS_H_
#define NESTRA_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace nestra {

/// \brief Error categories used across the library.
///
/// The library does not throw exceptions on expected failure paths; every
/// fallible operation returns a Status (or a Result<T>, below), following the
/// convention of systems like Arrow and RocksDB.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kTypeError,
  kParseError,
  kBindError,
  kNotImplemented,
  kInternal,
  kResourceExhausted,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief A success-or-error outcome carrying a code and a message.
///
/// Cheap to copy in the OK case (no allocation). Construct errors through the
/// named factory functions: `Status::InvalidArgument("...")` etc.
class Status {
 public:
  /// Creates an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief Either a value of type T or an error Status.
///
/// Usage:
///   Result<Table> r = DoThing();
///   if (!r.ok()) return r.status();
///   Table t = std::move(r).ValueOrDie();
///
/// Prefer the NESTRA_ASSIGN_OR_RETURN macro for propagation.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Implicit construction from an error status. It is a programming error to
  /// construct a Result from an OK status; that case is remapped to an
  /// internal error so it surfaces loudly instead of crashing.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& ValueOrDie() const& { return *value_; }
  T& ValueOrDie() & { return *value_; }
  T ValueOrDie() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ holds a value.
};

}  // namespace nestra

// Propagation macros (statement-expression free, portable).
#define NESTRA_CONCAT_IMPL(x, y) x##y
#define NESTRA_CONCAT(x, y) NESTRA_CONCAT_IMPL(x, y)

/// Evaluates `expr` (a Status); returns it from the enclosing function if not
/// OK.
#define NESTRA_RETURN_NOT_OK(expr)                        \
  do {                                                    \
    ::nestra::Status _nestra_status = (expr);             \
    if (!_nestra_status.ok()) return _nestra_status;      \
  } while (false)

/// Evaluates `expr` (a Result<T>); on success binds the value to `lhs`,
/// otherwise returns the error status from the enclosing function.
#define NESTRA_ASSIGN_OR_RETURN_IMPL(result_name, lhs, expr) \
  auto result_name = (expr);                                 \
  if (!result_name.ok()) return result_name.status();        \
  lhs = std::move(result_name).ValueOrDie()

#define NESTRA_ASSIGN_OR_RETURN(lhs, expr)                                  \
  NESTRA_ASSIGN_OR_RETURN_IMPL(NESTRA_CONCAT(_nestra_result_, __COUNTER__), \
                               lhs, expr)

#endif  // NESTRA_COMMON_STATUS_H_
