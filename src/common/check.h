#ifndef NESTRA_COMMON_CHECK_H_
#define NESTRA_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

/// Invariant-checking macros for conditions that indicate a bug in nestra
/// itself (never for user errors — those go through Status/Result).
///
/// NESTRA_CHECK(cond)  — always on; prints the failed expression with its
///                       location and aborts.
/// NESTRA_DCHECK(cond) — debug builds only (compiled out under NDEBUG);
///                       use it on hot paths where the check would cost.
#define NESTRA_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "NESTRA_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (false)

#ifdef NDEBUG
// Keeps `cond` syntactically checked (and its operands "used") without
// evaluating it.
#define NESTRA_DCHECK(cond) ((void)sizeof(!(cond)))
#else
#define NESTRA_DCHECK(cond) NESTRA_CHECK(cond)
#endif

#endif  // NESTRA_COMMON_CHECK_H_
