#include "common/row_batch.h"

#include <utility>

namespace nestra {

void ColumnVector::Reset(TypeId type) {
  type_ = type;
  Clear();
}

void ColumnVector::Clear() {
  generic_ = false;
  nulls_.clear();
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  values_.clear();
}

void ColumnVector::ConvertToGeneric() {
  values_.clear();
  values_.reserve(nulls_.size());
  for (size_t i = 0; i < nulls_.size(); ++i) {
    if (nulls_[i] != 0) {
      values_.push_back(Value::Null());
      continue;
    }
    switch (type_) {
      case TypeId::kInt64:
      case TypeId::kDate:
        values_.push_back(Value::Int64(ints_[i]));
        break;
      case TypeId::kFloat64:
        values_.push_back(Value::Float64(doubles_[i]));
        break;
      case TypeId::kString:
        values_.push_back(Value::String(std::move(strings_[i])));
        break;
    }
  }
  ints_.clear();
  doubles_.clear();
  strings_.clear();
  generic_ = true;
}

int64_t ColumnVector::ByteSize() const {
  int64_t bytes = static_cast<int64_t>(nulls_.size());  // null bytes
  if (generic_) {
    for (const Value& v : values_) {
      bytes += static_cast<int64_t>(sizeof(Value));
      if (v.is_string()) bytes += static_cast<int64_t>(v.string().size());
    }
    return bytes;
  }
  switch (type_) {
    case TypeId::kInt64:
    case TypeId::kDate:
      bytes += static_cast<int64_t>(ints_.size() * sizeof(int64_t));
      break;
    case TypeId::kFloat64:
      bytes += static_cast<int64_t>(doubles_.size() * sizeof(double));
      break;
    case TypeId::kString:
      for (const std::string& s : strings_) {
        bytes += static_cast<int64_t>(sizeof(std::string) + s.size());
      }
      break;
  }
  return bytes;
}

int64_t RowBatch::ByteSize() const {
  int64_t bytes = 0;
  for (const ColumnVector& col : columns_) bytes += col.ByteSize();
  return bytes;
}

void RowBatch::Reset(const Schema& schema) {
  if (schema_ == &schema &&
      columns_.size() == static_cast<size_t>(schema.num_fields())) {
    Clear();
    return;
  }
  schema_ = &schema;
  columns_.resize(schema.num_fields());
  for (int i = 0; i < schema.num_fields(); ++i) {
    columns_[i].Reset(schema.field(i).type);
  }
  num_rows_ = 0;
}

void RowBatch::Clear() {
  for (ColumnVector& col : columns_) col.Clear();
  num_rows_ = 0;
}

std::string RowBatch::ToString(int64_t max_rows) const {
  std::string out = "RowBatch(" + std::to_string(num_rows_) + " rows)";
  const int64_t n = num_rows_ < max_rows ? num_rows_ : max_rows;
  for (int64_t i = 0; i < n; ++i) {
    out += "\n  " + MaterializeRow(i).ToString();
  }
  if (n < num_rows_) out += "\n  ...";
  return out;
}

}  // namespace nestra
