#include "common/table.h"

#include <algorithm>

#include "common/pretty_print.h"

namespace nestra {

Status Table::Append(Row row) {
  if (row.size() != schema_.num_fields()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) +
        " does not match schema arity " +
        std::to_string(schema_.num_fields()));
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Table> Table::Project(const std::vector<std::string>& columns) const {
  std::vector<int> indices;
  indices.reserve(columns.size());
  for (const std::string& c : columns) {
    NESTRA_ASSIGN_OR_RETURN(int idx, schema_.Resolve(c));
    indices.push_back(idx);
  }
  Table out(schema_.Select(indices));
  out.Reserve(rows_.size());
  for (const Row& r : rows_) out.AppendUnchecked(r.Select(indices));
  return out;
}

Table Table::Sorted() const {
  Table out(schema_, rows_);
  std::sort(out.rows_.begin(), out.rows_.end(),
            [](const Row& a, const Row& b) { return Row::Compare(a, b) < 0; });
  return out;
}

bool Table::BagEquals(const Table& a, const Table& b) {
  if (a.num_rows() != b.num_rows()) return false;
  if (a.schema().num_fields() != b.schema().num_fields()) return false;
  const Table sa = a.Sorted();
  const Table sb = b.Sorted();
  return sa.rows() == sb.rows();
}

std::string Table::ToString(int max_rows) const {
  return PrettyPrintTable(*this, max_rows);
}

}  // namespace nestra
