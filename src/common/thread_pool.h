#ifndef NESTRA_COMMON_THREAD_POOL_H_
#define NESTRA_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nestra {

/// Resolves a user-facing thread-count knob: <= 0 means "use the hardware"
/// (std::thread::hardware_concurrency, at least 1); anything else is taken
/// literally. 1 selects the serial code paths everywhere.
int ResolveNumThreads(int requested);

/// \brief A fixed set of worker threads draining a shared FIFO task queue.
///
/// The pool is deliberately minimal: Submit() enqueues a closure and
/// returns; workers run closures in order. Completion tracking and result
/// placement are the caller's job — ParallelForEach / ParallelForMorsels
/// below package the one pattern the engine needs (morsel-driven loops
/// with deterministic output slots).
class ThreadPool {
 public:
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Pops one queued task and runs it on the calling thread; returns false
  /// without blocking when the queue is empty. This is how blocked waiters
  /// help instead of idling: a thread that must wait for pool work it (or a
  /// task it runs) submitted can drain queued tasks meanwhile, which is what
  /// makes nested parallel loops and the pipeline DAG scheduler safe on a
  /// bounded pool.
  bool TryRunOne();

  int num_workers() const;

  /// Grows the pool to at least `num_workers` threads (never shrinks).
  void EnsureWorkers(int num_workers);

  /// The process-wide pool used by the execution engine. Created on first
  /// use with hardware_concurrency - 1 workers (the query thread itself is
  /// the remaining lane) and grown on demand when a query requests more
  /// parallelism than the hardware advertises. Never destroyed.
  static ThreadPool* Shared();

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

/// \brief Runs `body(i)` for every i in [0, units) from up to `num_threads`
/// threads (the calling thread participates; helpers come from the shared
/// pool). Units are claimed dynamically, so `body` must be safe to call
/// concurrently and must not depend on which thread runs which unit; it
/// must not throw. Blocks until every unit has finished. Nesting is safe:
/// while waiting for its helpers the caller drains other queued pool tasks
/// (ThreadPool::TryRunOne), so an outer loop blocked on helpers can never
/// starve them of workers. With num_threads <= 1 this is a plain serial
/// loop.
void ParallelForEach(int64_t units, int num_threads,
                     const std::function<void(int64_t)>& body);

/// Number of morsels ParallelForMorsels will use for a row range of
/// `total` rows at the given parallelism — call this first to size a
/// per-morsel output-slot vector.
int64_t MorselCount(int64_t total, int num_threads);

/// \brief Morsel-driven parallel loop over a row range: splits [0, total)
/// into MorselCount() contiguous ranges and runs
/// `body(morsel, begin, end)` for each. Morsel m covers rows
/// [m*chunk, min(total, (m+1)*chunk)) — ranges partition the input in
/// order, so writing results into slot `morsel` and concatenating slots in
/// index order reproduces the serial output exactly, regardless of thread
/// count or scheduling. Same concurrency contract as ParallelForEach.
void ParallelForMorsels(
    int64_t total, int num_threads,
    const std::function<void(int64_t, int64_t, int64_t)>& body);

/// \brief Monotonic counters describing shared-pool usage since process
/// start. Profilers snapshot these before and after a stage and report the
/// delta: how many parallel loops ran, how many helper tasks were
/// submitted, and how long callers sat waiting for helpers to drain.
struct PoolStatsSnapshot {
  int64_t parallel_loops = 0;
  int64_t tasks_submitted = 0;
  double wait_seconds = 0;

  PoolStatsSnapshot operator-(const PoolStatsSnapshot& o) const {
    return {parallel_loops - o.parallel_loops,
            tasks_submitted - o.tasks_submitted,
            wait_seconds - o.wait_seconds};
  }
};

/// Current process-wide pool usage counters (cheap: three relaxed loads).
PoolStatsSnapshot GlobalPoolStats();

}  // namespace nestra

#endif  // NESTRA_COMMON_THREAD_POOL_H_
