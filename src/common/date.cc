#include "common/date.h"

#include <cstdio>

namespace nestra {

namespace {

// Howard Hinnant's days-from-civil algorithm (public domain).
int64_t DaysFromCivilUnchecked(int y, int m, int d) {
  y -= m <= 2;
  const int64_t era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);          // [0,399]
  const unsigned doy = (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;  // [0,365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;  // [0,146096]
  return era * 146097 + static_cast<int64_t>(doe) - 719468;
}

bool IsLeap(int y) { return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0; }

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeap(y)) return 29;
  return kDays[m - 1];
}

}  // namespace

Result<int64_t> DaysFromCivil(int year, int month, int day) {
  if (month < 1 || month > 12) {
    return Status::InvalidArgument("month out of range: " +
                                   std::to_string(month));
  }
  if (day < 1 || day > DaysInMonth(year, month)) {
    return Status::InvalidArgument("day out of range: " + std::to_string(day));
  }
  return DaysFromCivilUnchecked(year, month, day);
}

void CivilFromDays(int64_t days, int* year, int* month, int* day) {
  int64_t z = days + 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);  // [0,146096]
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0,399]
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);  // [0,365]
  const unsigned mp = (5 * doy + 2) / 153;                       // [0,11]
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;               // [1,31]
  const unsigned m = mp + (mp < 10 ? 3 : -9);                    // [1,12]
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

Result<int64_t> ParseDate(const std::string& text) {
  int y = 0, m = 0, d = 0;
  char extra = 0;
  const int n = std::sscanf(text.c_str(), "%d-%d-%d%c", &y, &m, &d, &extra);
  if (n != 3) {
    return Status::ParseError("invalid date literal: '" + text +
                              "' (want YYYY-MM-DD)");
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

}  // namespace nestra
