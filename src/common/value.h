#ifndef NESTRA_COMMON_VALUE_H_
#define NESTRA_COMMON_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

#include "common/status.h"
#include "common/tribool.h"

namespace nestra {

/// \brief Logical column types supported by the engine.
///
/// kDate is stored as days since 1970-01-01 (an int32-ranged int64); dates
/// therefore compare like integers. This is all the paper's TPC-H workload
/// needs.
enum class TypeId { kInt64, kFloat64, kString, kDate };

const char* TypeIdToString(TypeId type);

/// \brief Comparison operators used by predicates and linking predicates
/// (the paper's theta in {<, <=, >, >=, =, <>}).
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpToString(CmpOp op);

/// The operator theta' such that (a theta b) == (b theta' a).
CmpOp FlipCmpOp(CmpOp op);

/// The operator theta' such that (a theta' b) == NOT (a theta b) (under
/// two-valued logic; NULL comparisons stay Unknown either way).
CmpOp NegateCmpOp(CmpOp op);

/// \brief A dynamically typed, nullable SQL value.
///
/// NULL is represented by std::monostate. A Value does not remember its
/// declared column type; schemas carry types and the expression binder checks
/// them. Numeric comparisons promote int64 to double when the sides differ.
class Value {
 public:
  /// Creates a NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Storage(v)); }
  static Value Float64(double v) { return Value(Storage(v)); }
  static Value String(std::string v) { return Value(Storage(std::move(v))); }
  /// A date value; `days` is days since the Unix epoch.
  static Value Date(int64_t days) { return Value(Storage(days)); }
  /// A boolean surfaced as an int64 0/1 (the engine has no bool column type).
  static Value Bool(bool b) { return Value(Storage(int64_t{b ? 1 : 0})); }

  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_float() const { return std::holds_alternative<double>(data_); }
  bool is_string() const { return std::holds_alternative<std::string>(data_); }

  /// Accessors; calling the wrong one on a non-null value is a programming
  /// error (UB via std::get). Use the checked As* variants when unsure.
  int64_t int64() const { return std::get<int64_t>(data_); }
  double float64() const { return std::get<double>(data_); }
  const std::string& string() const { return std::get<std::string>(data_); }

  /// Numeric view: int64 promoted to double. Returns nullopt for NULL or
  /// string values.
  std::optional<double> AsDouble() const;

  /// Deep equality used by containers and tests: NULL equals NULL here
  /// (unlike SQL comparison semantics — use Compare for those).
  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// A total order for sorting: NULL sorts first, then numerics (cross-type
  /// int/double compared numerically), then strings. This is the order used
  /// by the sort operator and the sort-based nest.
  static int TotalOrderCompare(const Value& a, const Value& b);

  /// SQL comparison: returns nullopt when either side is NULL or the types
  /// are incomparable (string vs numeric); otherwise <0, 0, >0.
  static std::optional<int> Compare(const Value& a, const Value& b);

  /// SQL theta-comparison under three-valued logic.
  static TriBool Apply(CmpOp op, const Value& a, const Value& b);

  /// Hash consistent with operator== (deep equality): int64 1 and double
  /// 1.0 hash differently, just as operator== distinguishes them. NOT for
  /// hash-table keys compared with SQL semantics — use SqlHash there.
  size_t Hash() const;

  /// Hash consistent with SQL key equality (TotalOrderCompare == 0, and
  /// therefore with Apply(kEq) on non-NULL operands): numerics hash through
  /// their double image so int64 1 and double 1.0 collide, as the SQL
  /// comparator requires. Used by every hash-based operator's key tables
  /// (see common/hash_key.h). int64 values beyond 2^53 may collide with
  /// nearby integers; equality disambiguates.
  size_t SqlHash() const;

  std::string ToString() const;

 private:
  using Storage = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Storage s) : data_(std::move(s)) {}

  Storage data_;
};

}  // namespace nestra

#endif  // NESTRA_COMMON_VALUE_H_
