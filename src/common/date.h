#ifndef NESTRA_COMMON_DATE_H_
#define NESTRA_COMMON_DATE_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace nestra {

/// \brief Calendar helpers for the kDate type (days since 1970-01-01).
///
/// Supports the proleptic Gregorian calendar over the range the TPC-H
/// workload needs (1992..1998) and far beyond.

/// Parses 'YYYY-MM-DD' into days since epoch.
Result<int64_t> ParseDate(const std::string& text);

/// Converts days since epoch back to 'YYYY-MM-DD'.
std::string FormatDate(int64_t days);

/// Days since epoch for a (year, month 1-12, day 1-31) triple. No range
/// validation beyond month/day plausibility; invalid input gives an error.
Result<int64_t> DaysFromCivil(int year, int month, int day);

/// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* year, int* month, int* day);

}  // namespace nestra

#endif  // NESTRA_COMMON_DATE_H_
