#ifndef NESTRA_COMMON_ROW_H_
#define NESTRA_COMMON_ROW_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/value.h"

namespace nestra {

/// \brief A flat tuple of values, positionally aligned with some Schema.
class Row {
 public:
  Row() = default;
  explicit Row(std::vector<Value> values) : values_(std::move(values)) {}
  Row(std::initializer_list<Value> values) : values_(values) {}

  int size() const { return static_cast<int>(values_.size()); }
  bool empty() const { return values_.empty(); }

  const Value& operator[](int i) const { return values_[i]; }
  Value& operator[](int i) { return values_[i]; }

  const std::vector<Value>& values() const { return values_; }
  std::vector<Value>& values() { return values_; }

  void Append(Value v) { values_.push_back(std::move(v)); }
  void Reserve(size_t n) { values_.reserve(n); }

  /// Concatenation, e.g. for join outputs.
  static Row Concat(const Row& left, const Row& right);

  /// Row of `n` NULLs (outer-join padding).
  static Row Nulls(int n);

  /// Projection onto the given column indices, in order.
  Row Select(const std::vector<int>& indices) const;

  /// Deep equality (NULL == NULL), consistent with Value::operator==.
  bool operator==(const Row& other) const { return values_ == other.values_; }
  bool operator!=(const Row& other) const { return !(*this == other); }

  /// Lexicographic total order (per Value::TotalOrderCompare). Used for
  /// deterministic test comparison and sort-based nesting.
  static int Compare(const Row& a, const Row& b);

  /// Lexicographic comparison restricted to `keys` column indices.
  static int CompareOn(const Row& a, const Row& b, const std::vector<int>& keys);

  /// Combined hash of the values at `keys` (deep semantics: NULL hashes to a
  /// fixed value).
  static size_t HashOn(const Row& a, const std::vector<int>& keys);

  /// True if any of the values at `keys` is NULL.
  bool AnyNullOn(const std::vector<int>& keys) const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace nestra

#endif  // NESTRA_COMMON_ROW_H_
