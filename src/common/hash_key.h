#ifndef NESTRA_COMMON_HASH_KEY_H_
#define NESTRA_COMMON_HASH_KEY_H_

#include <cstddef>
#include <vector>

#include "common/row.h"
#include "common/value.h"

namespace nestra {

/// \brief Hash/equality functors for SQL-semantics hash-table keys, shared
/// by every hash-based operator (hash join, hash nest, pushed-down linking
/// selection, DISTINCT, GROUP BY, set operations, equality indexes).
///
/// SQL comparison (`Value::Apply(kEq)`, `Value::TotalOrderCompare`)
/// promotes int64 to double when the sides' types differ, so `1 = 1.0`
/// holds — and hash-table keys must agree, or a hash join on an
/// int-typed column against a float-typed column silently drops every
/// cross-type match that the nested-loop oracle finds. These functors
/// therefore equate keys exactly when TotalOrderCompare says 0 and hash
/// numerics through their double image (Value::SqlHash). NULLs compare
/// equal here — that is what nest / DISTINCT / GROUP BY need, and the
/// hash join excludes NULL keys before the table is ever probed.

constexpr size_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
constexpr size_t kFnvPrime = 0x100000001b3ULL;

inline size_t SqlKeyHashCombine(size_t h, const Value& v) {
  h ^= v.SqlHash();
  h *= kFnvPrime;
  return h;
}

/// Combined SQL hash of the values at `idx`, in order — identical to
/// SqlValueKeyHash over the vector Row::Select(idx) would build, without
/// materializing the key.
inline size_t SqlKeyHashOn(const Row& row, const std::vector<int>& idx) {
  size_t h = kFnvOffsetBasis;
  for (const int i : idx) h = SqlKeyHashCombine(h, row[i]);
  return h;
}

struct SqlValueKeyHash {
  size_t operator()(const std::vector<Value>& key) const {
    size_t h = kFnvOffsetBasis;
    for (const Value& v : key) h = SqlKeyHashCombine(h, v);
    return h;
  }
};

struct SqlValueKeyEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (Value::TotalOrderCompare(a[i], b[i]) != 0) return false;
    }
    return true;
  }
};

struct SqlValueHash {
  size_t operator()(const Value& v) const { return v.SqlHash(); }
};

struct SqlValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return Value::TotalOrderCompare(a, b) == 0;
  }
};

struct SqlRowHash {
  size_t operator()(const Row& r) const {
    size_t h = kFnvOffsetBasis;
    for (const Value& v : r.values()) h = SqlKeyHashCombine(h, v);
    return h;
  }
};

struct SqlRowEq {
  bool operator()(const Row& a, const Row& b) const {
    return a.size() == b.size() && Row::Compare(a, b) == 0;
  }
};

}  // namespace nestra

#endif  // NESTRA_COMMON_HASH_KEY_H_
