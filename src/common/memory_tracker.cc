#include "common/memory_tracker.h"

#include <mutex>
#include <sstream>
#include <utility>
#include <vector>

namespace nestra {
namespace {

void AtomicMax(std::atomic<int64_t>* target, int64_t value) {
  int64_t cur = target->load(std::memory_order_relaxed);
  while (cur < value && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

/// Process-level roll-up plus the set of live sessions, for `\memory`.
/// Heap-allocated leaky singleton so sessions destroyed during static
/// teardown can still unregister safely.
struct ProcessMemoryRegistry {
  std::mutex mu;
  std::vector<SessionMemoryTracker*> sessions;
  std::atomic<int64_t> current{0};
  std::atomic<int64_t> peak{0};
  std::atomic<int64_t> cumulative{0};
  std::atomic<int64_t> queries{0};
};

ProcessMemoryRegistry& Registry() {
  static ProcessMemoryRegistry* registry = new ProcessMemoryRegistry();
  return *registry;
}

thread_local QueryMemoryTracker* tls_query_memory = nullptr;
thread_local SessionMemoryTracker* tls_session_memory = nullptr;

}  // namespace

int64_t TableBytes(const Table& table) {
  int64_t bytes = 0;
  for (const Row& row : table.rows()) bytes += RowBytes(row);
  return bytes;
}

QueryMemoryTracker::QueryMemoryTracker(int64_t limit)
    : limit_(limit), session_(tls_session_memory) {}

QueryMemoryTracker::~QueryMemoryTracker() {
  // A failed query can exit with live charges still outstanding; return
  // them so the session/process `current` gauges do not drift.
  int64_t residual = current_.load(std::memory_order_relaxed);
  if (residual != 0) Release(residual);
  int64_t final_peak = peak_.load(std::memory_order_relaxed);
  if (session_ != nullptr) {
    session_->FoldQueryPeak(final_peak);
  } else {
    ProcessMemoryRegistry& reg = Registry();
    AtomicMax(&reg.peak, final_peak);
    reg.cumulative.fetch_add(final_peak, std::memory_order_relaxed);
    reg.queries.fetch_add(1, std::memory_order_relaxed);
  }
}

Status QueryMemoryTracker::Exceeded(int64_t attempted) const {
  std::ostringstream oss;
  oss << "query memory limit exceeded: accounted " << attempted
      << " bytes > max_query_mem=" << limit_ << " bytes";
  return Status::ResourceExhausted(oss.str());
}

Status QueryMemoryTracker::Charge(int64_t bytes) {
  if (bytes == 0) return Status::OK();
  int64_t now =
      current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (session_ != nullptr) session_->AddCurrent(bytes);
  Registry().current.fetch_add(bytes, std::memory_order_relaxed);
  if (limit_ > 0 && now > limit_) return Exceeded(now);
  return Status::OK();
}

void QueryMemoryTracker::Release(int64_t bytes) {
  if (bytes == 0) return;
  current_.fetch_sub(bytes, std::memory_order_relaxed);
  if (session_ != nullptr) session_->AddCurrent(-bytes);
  Registry().current.fetch_sub(bytes, std::memory_order_relaxed);
}

Status QueryMemoryTracker::FoldStage(int64_t stage_bytes) {
  AtomicMax(&peak_, stage_bytes);
  if (limit_ > 0 && stage_bytes > limit_) return Exceeded(stage_bytes);
  return Status::OK();
}

SessionMemoryTracker::SessionMemoryTracker(std::string label)
    : label_(std::move(label)) {
  ProcessMemoryRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.sessions.push_back(this);
}

SessionMemoryTracker::~SessionMemoryTracker() {
  ProcessMemoryRegistry& reg = Registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (size_t i = 0; i < reg.sessions.size(); ++i) {
    if (reg.sessions[i] == this) {
      reg.sessions.erase(reg.sessions.begin() +
                         static_cast<ptrdiff_t>(i));
      break;
    }
  }
}

void SessionMemoryTracker::FoldQueryPeak(int64_t peak_bytes) {
  AtomicMax(&peak_, peak_bytes);
  cumulative_.fetch_add(peak_bytes, std::memory_order_relaxed);
  queries_.fetch_add(1, std::memory_order_relaxed);
  ProcessMemoryRegistry& reg = Registry();
  AtomicMax(&reg.peak, peak_bytes);
  reg.cumulative.fetch_add(peak_bytes, std::memory_order_relaxed);
  reg.queries.fetch_add(1, std::memory_order_relaxed);
}

int64_t ProcessMemoryCurrent() {
  return Registry().current.load(std::memory_order_relaxed);
}

int64_t ProcessMemoryPeak() {
  return Registry().peak.load(std::memory_order_relaxed);
}

int64_t ProcessMemoryCumulative() {
  return Registry().cumulative.load(std::memory_order_relaxed);
}

std::string DumpMemoryHierarchy() {
  ProcessMemoryRegistry& reg = Registry();
  std::ostringstream oss;
  oss << "process: current=" << reg.current.load(std::memory_order_relaxed)
      << "B peak=" << reg.peak.load(std::memory_order_relaxed)
      << "B cumulative="
      << reg.cumulative.load(std::memory_order_relaxed)
      << "B queries=" << reg.queries.load(std::memory_order_relaxed)
      << "\n";
  std::lock_guard<std::mutex> lock(reg.mu);
  if (reg.sessions.empty()) {
    oss << "  (no live sessions)\n";
    return oss.str();
  }
  for (const SessionMemoryTracker* s : reg.sessions) {
    oss << "  session " << s->label() << ": current=" << s->current()
        << "B peak=" << s->peak() << "B cumulative=" << s->cumulative()
        << "B queries=" << s->queries() << "\n";
  }
  return oss.str();
}

QueryMemoryTracker* CurrentQueryMemory() { return tls_query_memory; }

ScopedQueryMemory::ScopedQueryMemory(QueryMemoryTracker* tracker)
    : prev_(tls_query_memory) {
  tls_query_memory = tracker;
}

ScopedQueryMemory::~ScopedQueryMemory() { tls_query_memory = prev_; }

SessionMemoryTracker* CurrentSessionMemory() { return tls_session_memory; }

ScopedSessionMemory::ScopedSessionMemory(SessionMemoryTracker* tracker)
    : prev_(tls_session_memory) {
  tls_session_memory = tracker;
}

ScopedSessionMemory::~ScopedSessionMemory() { tls_session_memory = prev_; }

}  // namespace nestra
