#include "common/pretty_print.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/date.h"
#include "common/table.h"

namespace nestra {

namespace {

std::string RenderCell(const Value& v, TypeId type) {
  if (v.is_null()) return "null";
  if (type == TypeId::kDate && v.is_int()) return FormatDate(v.int64());
  return v.ToString();
}

}  // namespace

std::string PrettyPrintTable(const Table& table, int max_rows) {
  const Schema& schema = table.schema();
  const int ncols = schema.num_fields();
  const int64_t shown =
      std::min<int64_t>(table.num_rows(), std::max(max_rows, 0));

  std::vector<std::vector<std::string>> cells;
  std::vector<size_t> widths(ncols, 0);

  std::vector<std::string> header(ncols);
  for (int c = 0; c < ncols; ++c) {
    header[c] = schema.field(c).name;
    widths[c] = header[c].size();
  }
  for (int64_t r = 0; r < shown; ++r) {
    std::vector<std::string> row(ncols);
    for (int c = 0; c < ncols; ++c) {
      row[c] = RenderCell(table.rows()[r][c], schema.field(c).type);
      widths[c] = std::max(widths[c], row[c].size());
    }
    cells.push_back(std::move(row));
  }

  auto rule = [&]() {
    std::string s = "+";
    for (int c = 0; c < ncols; ++c) s += std::string(widths[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& row) {
    std::string s = "|";
    for (int c = 0; c < ncols; ++c) {
      s += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::ostringstream oss;
  oss << rule() << line(header) << rule();
  for (const auto& row : cells) oss << line(row);
  oss << rule();
  if (table.num_rows() > shown) {
    oss << "... (" << (table.num_rows() - shown) << " more rows)\n";
  }
  return oss.str();
}

}  // namespace nestra
