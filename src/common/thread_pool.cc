#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <utility>

#include "telemetry/trace.h"

namespace nestra {

namespace {
// Process-wide pool usage counters (see GlobalPoolStats). Wait time is kept
// in nanoseconds so the counter can stay a lock-free integer.
std::atomic<int64_t> g_parallel_loops{0};
std::atomic<int64_t> g_tasks_submitted{0};
std::atomic<int64_t> g_wait_nanos{0};

// True on threads whose top frame is ThreadPool::WorkerLoop. Helper tasks
// drained inline by a waiting caller (TryRunOne) use it to label their trace
// spans "pool-task-inline", keeping the "pool-task spans appear only on
// pool-worker tracks" invariant the telemetry smoke checks.
thread_local bool t_is_pool_worker = false;
}  // namespace

PoolStatsSnapshot GlobalPoolStats() {
  PoolStatsSnapshot snap;
  snap.parallel_loops = g_parallel_loops.load(std::memory_order_relaxed);
  snap.tasks_submitted = g_tasks_submitted.load(std::memory_order_relaxed);
  snap.wait_seconds =
      static_cast<double>(g_wait_nanos.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

int ResolveNumThreads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_workers) { EnsureWorkers(num_workers); }

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

bool ThreadPool::TryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

int ThreadPool::num_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::EnsureWorkers(int num_workers) {
  std::lock_guard<std::mutex> lock(mu_);
  while (static_cast<int>(workers_.size()) < num_workers) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool* ThreadPool::Shared() {
  // Leaked on purpose: workers may still be parked at static-destruction
  // time and joining them from a destructor would be order-fragile.
  static ThreadPool* pool =
      new ThreadPool(std::max(0, ResolveNumThreads(0) - 1));
  return pool;
}

void ThreadPool::WorkerLoop() {
  // Names the worker's track in trace output ("pool-worker" vs the default
  // registration-ordered "thread-<n>"), so pool-task spans are attributable.
  telemetry::SetCurrentThreadName("pool-worker");
  t_is_pool_worker = true;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared between the caller and its helper tasks; helper tasks hold a
/// shared_ptr so the state outlives the caller even if a helper is
/// scheduled after all units were already claimed.
struct FanOutState {
  std::function<void(int64_t)> body;
  int64_t units = 0;
  std::atomic<int64_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  int pending_helpers = 0;

  void RunLoop() {
    while (true) {
      const int64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= units) return;
      body(i);
    }
  }

  void HelperExit() {
    std::lock_guard<std::mutex> lock(mu);
    if (--pending_helpers == 0) done_cv.notify_all();
  }
};

}  // namespace

void ParallelForEach(int64_t units, int num_threads,
                     const std::function<void(int64_t)>& body) {
  if (units <= 0) return;
  if (num_threads <= 1 || units == 1) {
    for (int64_t i = 0; i < units; ++i) body(i);
    return;
  }
  const int helpers =
      static_cast<int>(std::min<int64_t>(num_threads - 1, units - 1));
  ThreadPool* pool = ThreadPool::Shared();
  pool->EnsureWorkers(helpers);

  g_parallel_loops.fetch_add(1, std::memory_order_relaxed);
  g_tasks_submitted.fetch_add(helpers, std::memory_order_relaxed);

  telemetry::TraceSpan loop_span("pool", "parallel-for");
  loop_span.set_rows(units);

  auto state = std::make_shared<FanOutState>();
  state->body = body;
  state->units = units;
  state->pending_helpers = helpers;
  for (int i = 0; i < helpers; ++i) {
    pool->Submit([state] {
      // A helper picked up by a waiting caller (TryRunOne) runs off the
      // worker tracks; the distinct span name keeps trace accounting honest.
      telemetry::TraceSpan task_span(
          "pool", t_is_pool_worker ? "pool-task" : "pool-task-inline");
      state->RunLoop();
      task_span.End();
      state->HelperExit();
    });
  }
  state->RunLoop();
  const auto wait_start = std::chrono::steady_clock::now();
  // Helping wait: drain other queued pool tasks while our helpers finish.
  // Blocking outright here could deadlock a nested loop — with all workers
  // parked in waits like this one, queued helpers would never run. Once the
  // queue is empty every still-pending helper is already running on some
  // thread and will signal done_cv, so the final blocking wait is safe.
  while (true) {
    {
      std::unique_lock<std::mutex> lock(state->mu);
      if (state->pending_helpers == 0) break;
    }
    if (!pool->TryRunOne()) {
      std::unique_lock<std::mutex> lock(state->mu);
      state->done_cv.wait(lock, [&] { return state->pending_helpers == 0; });
      break;
    }
  }
  g_wait_nanos.fetch_add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wait_start)
                             .count(),
                         std::memory_order_relaxed);
}

int64_t MorselCount(int64_t total, int num_threads) {
  if (total <= 0) return 0;
  if (num_threads <= 1) return 1;
  // Morsels small enough to balance skew (several per thread), large enough
  // that claiming and slot bookkeeping stay negligible per row.
  constexpr int64_t kMinMorselRows = 1024;
  const int64_t by_grain = (total + kMinMorselRows - 1) / kMinMorselRows;
  return std::max<int64_t>(
      1, std::min<int64_t>(by_grain, int64_t{num_threads} * 8));
}

void ParallelForMorsels(
    int64_t total, int num_threads,
    const std::function<void(int64_t, int64_t, int64_t)>& body) {
  const int64_t morsels = MorselCount(total, num_threads);
  if (morsels == 0) return;
  const int64_t chunk = (total + morsels - 1) / morsels;
  ParallelForEach(morsels, num_threads, [&](int64_t m) {
    const int64_t begin = m * chunk;
    const int64_t end = std::min(total, begin + chunk);
    if (begin < end) body(m, begin, end);
  });
}

}  // namespace nestra
