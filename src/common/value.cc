#include "common/value.h"

#include <charconv>
#include <cmath>
#include <functional>

namespace nestra {

const char* TypeIdToString(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kString:
      return "string";
    case TypeId::kDate:
      return "date";
  }
  return "unknown";
}

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

CmpOp FlipCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kEq;
    case CmpOp::kNe:
      return CmpOp::kNe;
    case CmpOp::kLt:
      return CmpOp::kGt;
    case CmpOp::kLe:
      return CmpOp::kGe;
    case CmpOp::kGt:
      return CmpOp::kLt;
    case CmpOp::kGe:
      return CmpOp::kLe;
  }
  return op;
}

CmpOp NegateCmpOp(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return CmpOp::kNe;
    case CmpOp::kNe:
      return CmpOp::kEq;
    case CmpOp::kLt:
      return CmpOp::kGe;
    case CmpOp::kLe:
      return CmpOp::kGt;
    case CmpOp::kGt:
      return CmpOp::kLe;
    case CmpOp::kGe:
      return CmpOp::kLt;
  }
  return op;
}

std::optional<double> Value::AsDouble() const {
  if (is_int()) return static_cast<double>(int64());
  if (is_float()) return float64();
  return std::nullopt;
}

int Value::TotalOrderCompare(const Value& a, const Value& b) {
  // NULLs first.
  if (a.is_null() && b.is_null()) return 0;
  if (a.is_null()) return -1;
  if (b.is_null()) return 1;
  const bool a_num = a.is_int() || a.is_float();
  const bool b_num = b.is_int() || b.is_float();
  if (a_num && b_num) {
    if (a.is_int() && b.is_int()) {
      const int64_t x = a.int64();
      const int64_t y = b.int64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = *a.AsDouble();
    const double y = *b.AsDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  // Numerics before strings.
  if (a_num) return -1;
  if (b_num) return 1;
  const int c = a.string().compare(b.string());
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

std::optional<int> Value::Compare(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return std::nullopt;
  const bool a_num = a.is_int() || a.is_float();
  const bool b_num = b.is_int() || b.is_float();
  if (a_num != b_num) return std::nullopt;  // string vs numeric: incomparable
  return TotalOrderCompare(a, b);
}

TriBool Value::Apply(CmpOp op, const Value& a, const Value& b) {
  const std::optional<int> c = Compare(a, b);
  if (!c.has_value()) return TriBool::kUnknown;
  switch (op) {
    case CmpOp::kEq:
      return MakeTriBool(*c == 0);
    case CmpOp::kNe:
      return MakeTriBool(*c != 0);
    case CmpOp::kLt:
      return MakeTriBool(*c < 0);
    case CmpOp::kLe:
      return MakeTriBool(*c <= 0);
    case CmpOp::kGt:
      return MakeTriBool(*c > 0);
    case CmpOp::kGe:
      return MakeTriBool(*c >= 0);
  }
  return TriBool::kUnknown;
}

size_t Value::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_int()) {
    // Deep hash, paired with operator==: int64 1 and double 1.0 are
    // distinct values here, so they deliberately hash differently. Key
    // tables that need SQL semantics (1 = 1.0) must use SqlHash instead.
    return std::hash<int64_t>()(int64()) * 0xff51afd7ed558ccdULL;
  }
  if (is_float()) return std::hash<double>()(float64()) ^ 0xc4ceb9fe1a85ec53ULL;
  return std::hash<std::string>()(string());
}

size_t Value::SqlHash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_string()) return std::hash<std::string>()(string());
  // Both numeric types hash through the double image so that values equated
  // by the SQL comparator (1 = 1.0) land in the same bucket. +0.0 and -0.0
  // compare equal, so canonicalize the sign before hashing.
  double d = *AsDouble();
  if (d == 0.0) d = 0.0;
  return std::hash<double>()(d) ^ 0xc4ceb9fe1a85ec53ULL;
}

std::string Value::ToString() const {
  if (is_null()) return "null";
  if (is_int()) return std::to_string(int64());
  if (is_float()) {
    const double d = float64();
    if (std::isnan(d)) return "nan";
    if (std::isinf(d)) return d < 0 ? "-inf" : "inf";
    // Shortest round-trippable form: parsing the string recovers exactly
    // this double, so CSV and catalog round-trips are lossless.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    return std::string(buf, res.ptr);
  }
  return string();
}

}  // namespace nestra
