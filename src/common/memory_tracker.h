#ifndef NESTRA_COMMON_MEMORY_TRACKER_H_
#define NESTRA_COMMON_MEMORY_TRACKER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/row.h"
#include "common/status.h"
#include "common/table.h"
#include "common/value.h"

namespace nestra {

/// Hierarchical byte accounting: process -> session -> query -> operator
/// (DESIGN.md §14). Operators keep plain unsynchronized counters
/// (MemoryAcct / OperatorStats::peak_mem_bytes) and fold them into the
/// per-query tracker only at stage and drain boundaries, so the always-on
/// cost is a few integer adds per row — no clocks, no atomics on the
/// per-row path.
///
/// All byte counts are *logical* sizes computed from row content
/// (sizeof(Row/Value) plus string payload), never allocator capacities:
/// logical sizes are a pure function of the data, which is what makes the
/// reported peaks bit-identical across thread counts and across the
/// row/vectorized engines at a fixed configuration.

/// Logical footprint of one value: the variant header plus any string
/// payload it owns.
inline int64_t ValueBytes(const Value& v) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (v.is_string()) bytes += static_cast<int64_t>(v.string().size());
  return bytes;
}

/// Logical footprint of one row: the row header (the values vector) plus
/// every value.
inline int64_t RowBytes(const Row& row) {
  int64_t bytes = static_cast<int64_t>(sizeof(Row));
  for (const Value& v : row.values()) bytes += ValueBytes(v);
  return bytes;
}

/// Logical footprint of a materialized table. O(cells); called only at
/// stage boundaries, never per row.
int64_t TableBytes(const Table& table);

/// \brief Operator-local byte accountant: two plain int64 counters, no
/// synchronization. Embedded in materializing operators; folded into
/// OperatorStats / the query tracker at drain boundaries.
class MemoryAcct {
 public:
  void Add(int64_t bytes) {
    cur_ += bytes;
    if (cur_ > peak_) peak_ = cur_;
  }
  void Release(int64_t bytes) { cur_ -= bytes; }
  void Reset() { cur_ = peak_ = 0; }

  int64_t cur() const { return cur_; }
  int64_t peak() const { return peak_; }

 private:
  int64_t cur_ = 0;
  int64_t peak_ = 0;
};

class SessionMemoryTracker;

/// \brief Per-query byte tracker, created by NraExecutor::Execute for every
/// query and reachable from operators through the thread-local accessor
/// below.
///
/// Two distinct numbers live here:
///
///  * `current()` — live accounted bytes, maintained by operator charges
///    and releases at drain boundaries (a handful of relaxed atomics per
///    stage). This is what the soft limit checks and what `\memory` shows;
///    under the pipelined scheduler its instantaneous value depends on task
///    interleaving.
///  * `peak()` — the *deterministic* query peak: the largest single-stage
///    footprint, folded in with a CAS-max. Max is commutative, so the
///    result is independent of the order concurrent pipeline tasks fold
///    their stages — run-to-run identical at fixed (engine, threads,
///    options).
class QueryMemoryTracker {
 public:
  /// `limit` is NraOptions::max_query_mem (0 = off). Attaches to the
  /// thread-local session tracker, when one is installed.
  explicit QueryMemoryTracker(int64_t limit);

  /// Folds the final peak into the parent session (cumulative += peak,
  /// session peak CAS-max) and releases any residual live bytes a failed
  /// query left charged.
  ~QueryMemoryTracker();

  QueryMemoryTracker(const QueryMemoryTracker&) = delete;
  QueryMemoryTracker& operator=(const QueryMemoryTracker&) = delete;

  /// Accounts `bytes` of live materialized state. Fails with
  /// ResourceExhausted when the soft limit is on and the accounted total
  /// would exceed it — the caller propagates the error and the query fails
  /// with no partial results (the admission ticket is RAII-released).
  Status Charge(int64_t bytes);

  void Release(int64_t bytes);

  /// Folds one completed stage's footprint into the deterministic peak and
  /// applies the same soft-limit check `Charge` does. Stage footprints are
  /// pure functions of row content, so the CAS-max result is
  /// order-insensitive.
  Status FoldStage(int64_t stage_bytes);

  int64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  int64_t limit() const { return limit_; }

 private:
  Status Exceeded(int64_t attempted) const;

  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  const int64_t limit_;
  SessionMemoryTracker* const session_;
};

/// \brief Per-session accumulator, owned by the server Session (one per
/// connection). Registered with the process registry for the lifetime of
/// the session so `\memory` can dump the live hierarchy.
class SessionMemoryTracker {
 public:
  explicit SessionMemoryTracker(std::string label);
  ~SessionMemoryTracker();

  SessionMemoryTracker(const SessionMemoryTracker&) = delete;
  SessionMemoryTracker& operator=(const SessionMemoryTracker&) = delete;

  const std::string& label() const { return label_; }

  /// Live bytes charged by this session's in-flight queries.
  int64_t current() const {
    return current_.load(std::memory_order_relaxed);
  }
  /// Largest single-query deterministic peak this session has run.
  int64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Sum of every finished query's peak — the session's cumulative
  /// accounted bytes (`\session` shows this).
  int64_t cumulative() const {
    return cumulative_.load(std::memory_order_relaxed);
  }
  /// Queries whose peaks have been folded in.
  int64_t queries() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  friend class QueryMemoryTracker;

  void AddCurrent(int64_t bytes) {
    current_.fetch_add(bytes, std::memory_order_relaxed);
  }
  void FoldQueryPeak(int64_t peak_bytes);

  const std::string label_;
  std::atomic<int64_t> current_{0};
  std::atomic<int64_t> peak_{0};
  std::atomic<int64_t> cumulative_{0};
  std::atomic<int64_t> queries_{0};
};

/// Process-level roll-up (queries with no session parent fold here
/// directly; sessions fold through their tracker).
int64_t ProcessMemoryCurrent();
int64_t ProcessMemoryPeak();
int64_t ProcessMemoryCumulative();

/// Multi-line rendering of the live hierarchy — process totals, then one
/// line per registered session — for the shell's `\memory` command.
std::string DumpMemoryHierarchy();

/// The query tracker installed on this thread (null outside a query).
/// Operators charge through this; the pipelined scheduler re-installs the
/// owning query's tracker inside every DAG task body.
QueryMemoryTracker* CurrentQueryMemory();

/// RAII installer for the thread-local query tracker.
class ScopedQueryMemory {
 public:
  explicit ScopedQueryMemory(QueryMemoryTracker* tracker);
  ~ScopedQueryMemory();

  ScopedQueryMemory(const ScopedQueryMemory&) = delete;
  ScopedQueryMemory& operator=(const ScopedQueryMemory&) = delete;

 private:
  QueryMemoryTracker* prev_;
};

/// The session tracker new QueryMemoryTrackers on this thread attach to
/// (null for direct library callers).
SessionMemoryTracker* CurrentSessionMemory();

/// RAII installer for the thread-local session tracker (the server Session
/// wraps each statement in one).
class ScopedSessionMemory {
 public:
  explicit ScopedSessionMemory(SessionMemoryTracker* tracker);
  ~ScopedSessionMemory();

  ScopedSessionMemory(const ScopedSessionMemory&) = delete;
  ScopedSessionMemory& operator=(const ScopedSessionMemory&) = delete;

 private:
  SessionMemoryTracker* prev_;
};

}  // namespace nestra

#endif  // NESTRA_COMMON_MEMORY_TRACKER_H_
