#ifndef NESTRA_COMMON_PARALLEL_SORT_H_
#define NESTRA_COMMON_PARALLEL_SORT_H_

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace nestra {

/// \brief Parallel stable merge sort: sorts `*v` exactly as
/// std::stable_sort(v->begin(), v->end(), less) would — the stable order is
/// unique (elements ordered by key, ties by original position), so the
/// parallel and serial results are element-for-element identical and every
/// downstream consumer (sort-based nest, fused single-sort evaluator, ORDER
/// BY) is deterministic across thread counts.
///
/// Strategy: split into `num_threads` contiguous runs, stable_sort each on
/// the pool, then merge adjacent run pairs in parallel rounds (std::merge
/// takes from the left range on ties, preserving stability). `less` must be
/// safe to call concurrently; elements are moved, never copied.
template <typename T, typename Less>
void ParallelStableSort(std::vector<T>* v, const Less& less,
                        int num_threads) {
  const int64_t n = static_cast<int64_t>(v->size());
  // Below the cutoff the fan-out overhead dominates any win.
  constexpr int64_t kSerialCutoff = 8192;
  if (num_threads <= 1 || n < kSerialCutoff) {
    std::stable_sort(v->begin(), v->end(), less);
    return;
  }

  const int64_t runs = std::min<int64_t>(num_threads, n);
  std::vector<int64_t> bounds(static_cast<size_t>(runs) + 1);
  const int64_t chunk = (n + runs - 1) / runs;
  for (int64_t i = 0; i <= runs; ++i) bounds[i] = std::min(n, i * chunk);

  ParallelForEach(runs, num_threads, [&](int64_t r) {
    std::stable_sort(v->begin() + bounds[r], v->begin() + bounds[r + 1],
                     less);
  });

  std::vector<T> scratch(v->size());
  std::vector<T>* src = v;
  std::vector<T>* dst = &scratch;
  while (bounds.size() > 2) {
    const int64_t pieces = static_cast<int64_t>(bounds.size()) - 1;
    const int64_t pairs = pieces / 2;
    const bool odd = (pieces % 2) != 0;
    ParallelForEach(pairs + (odd ? 1 : 0), num_threads, [&](int64_t p) {
      if (p < pairs) {
        const int64_t b0 = bounds[2 * p];
        const int64_t b1 = bounds[2 * p + 1];
        const int64_t b2 = bounds[2 * p + 2];
        std::merge(std::make_move_iterator(src->begin() + b0),
                   std::make_move_iterator(src->begin() + b1),
                   std::make_move_iterator(src->begin() + b1),
                   std::make_move_iterator(src->begin() + b2),
                   dst->begin() + b0, less);
      } else {
        // Odd run out: carry it to the other buffer unchanged.
        const int64_t b0 = bounds[2 * p];
        const int64_t b1 = bounds[2 * p + 1];
        std::move(src->begin() + b0, src->begin() + b1, dst->begin() + b0);
      }
    });
    std::vector<int64_t> merged;
    merged.reserve(bounds.size() / 2 + 1);
    for (size_t i = 0; i < bounds.size(); i += 2) merged.push_back(bounds[i]);
    if (merged.back() != n) merged.push_back(n);
    bounds = std::move(merged);
    std::swap(src, dst);
  }
  if (src != v) {
    std::move(scratch.begin(), scratch.end(), v->begin());
  }
}

}  // namespace nestra

#endif  // NESTRA_COMMON_PARALLEL_SORT_H_
