#ifndef NESTRA_COMMON_SCHEMA_H_
#define NESTRA_COMMON_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace nestra {

/// \brief A named, typed column.
///
/// Field names inside the engine are usually qualified ("r.a") once a table
/// has been scanned under an alias; catalog-level base-table fields are
/// unqualified ("a").
struct Field {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool nullable = true;

  Field() = default;
  Field(std::string name_in, TypeId type_in, bool nullable_in = true)
      : name(std::move(name_in)), type(type_in), nullable(nullable_in) {}

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type &&
           nullable == other.nullable;
  }
};

/// \brief An ordered list of fields with name resolution.
///
/// Resolution rules (used by the expression binder):
///  * an exact match wins;
///  * otherwise an unqualified name `c` matches any field named `*.c`;
///  * zero matches -> NotFound, more than one -> ambiguous BindError.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}
  Schema(std::initializer_list<Field> fields) : fields_(fields) {}

  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  void AddField(Field f) { fields_.push_back(std::move(f)); }

  /// Index of the field with exactly this name, or -1.
  int IndexOfExact(const std::string& name) const;

  /// Full resolution (exact, then unqualified-suffix). See class comment.
  Result<int> Resolve(const std::string& name) const;

  /// Schema with all field names prefixed by "<qualifier>." (existing
  /// qualifiers are replaced: "x.a" scanned as r becomes "r.a").
  Schema Qualify(const std::string& qualifier) const;

  /// Concatenation (for join outputs). Duplicate names are allowed here;
  /// the binder's ambiguity detection protects users.
  static Schema Concat(const Schema& left, const Schema& right);

  /// Sub-schema of the given field indices, in order.
  Schema Select(const std::vector<int>& indices) const;

  bool Equals(const Schema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

/// Strips a leading "qualifier." from a column name, if present.
std::string UnqualifiedName(const std::string& name);

}  // namespace nestra

#endif  // NESTRA_COMMON_SCHEMA_H_
