#include "common/schema.h"

#include <sstream>

namespace nestra {

std::string UnqualifiedName(const std::string& name) {
  const size_t dot = name.rfind('.');
  if (dot == std::string::npos) return name;
  return name.substr(dot + 1);
}

int Schema::IndexOfExact(const std::string& name) const {
  for (int i = 0; i < num_fields(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return -1;
}

Result<int> Schema::Resolve(const std::string& name) const {
  const int exact = IndexOfExact(name);
  if (exact >= 0) {
    // Exact duplicates are still ambiguous.
    for (int i = exact + 1; i < num_fields(); ++i) {
      if (fields_[i].name == name) {
        return Status::BindError("ambiguous column reference: " + name);
      }
    }
    return exact;
  }
  if (name.find('.') != std::string::npos) {
    return Status::NotFound("column not found: " + name);
  }
  // Unqualified: match any "*.name".
  int found = -1;
  const std::string suffix = "." + name;
  for (int i = 0; i < num_fields(); ++i) {
    const std::string& f = fields_[i].name;
    if (f.size() > suffix.size() &&
        f.compare(f.size() - suffix.size(), suffix.size(), suffix) == 0) {
      if (found >= 0) {
        return Status::BindError("ambiguous column reference: " + name);
      }
      found = i;
    }
  }
  if (found < 0) return Status::NotFound("column not found: " + name);
  return found;
}

Schema Schema::Qualify(const std::string& qualifier) const {
  std::vector<Field> out;
  out.reserve(fields_.size());
  for (const Field& f : fields_) {
    out.emplace_back(qualifier + "." + UnqualifiedName(f.name), f.type,
                     f.nullable);
  }
  return Schema(std::move(out));
}

Schema Schema::Concat(const Schema& left, const Schema& right) {
  std::vector<Field> out = left.fields_;
  out.insert(out.end(), right.fields_.begin(), right.fields_.end());
  return Schema(std::move(out));
}

Schema Schema::Select(const std::vector<int>& indices) const {
  std::vector<Field> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(fields_[i]);
  return Schema(std::move(out));
}

std::string Schema::ToString() const {
  std::ostringstream oss;
  oss << "(";
  for (int i = 0; i < num_fields(); ++i) {
    if (i > 0) oss << ", ";
    oss << fields_[i].name << ": " << TypeIdToString(fields_[i].type);
    if (!fields_[i].nullable) oss << " NOT NULL";
  }
  oss << ")";
  return oss.str();
}

}  // namespace nestra
