#ifndef NESTRA_COMMON_PRETTY_PRINT_H_
#define NESTRA_COMMON_PRETTY_PRINT_H_

#include <string>

namespace nestra {

class Table;

/// \brief Renders a table as an ASCII grid, truncated to `max_rows` data
/// rows (a trailing "... (N more rows)" line indicates truncation).
///
/// Date-typed columns are rendered as YYYY-MM-DD.
std::string PrettyPrintTable(const Table& table, int max_rows = 50);

}  // namespace nestra

#endif  // NESTRA_COMMON_PRETTY_PRINT_H_
