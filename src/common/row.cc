#include "common/row.h"

#include <sstream>

namespace nestra {

Row Row::Concat(const Row& left, const Row& right) {
  std::vector<Value> out;
  out.reserve(left.values_.size() + right.values_.size());
  out.insert(out.end(), left.values_.begin(), left.values_.end());
  out.insert(out.end(), right.values_.begin(), right.values_.end());
  return Row(std::move(out));
}

Row Row::Nulls(int n) {
  return Row(std::vector<Value>(static_cast<size_t>(n)));
}

Row Row::Select(const std::vector<int>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(values_[i]);
  return Row(std::move(out));
}

int Row::Compare(const Row& a, const Row& b) {
  const int n = std::min(a.size(), b.size());
  for (int i = 0; i < n; ++i) {
    const int c = Value::TotalOrderCompare(a[i], b[i]);
    if (c != 0) return c;
  }
  return a.size() - b.size();
}

int Row::CompareOn(const Row& a, const Row& b, const std::vector<int>& keys) {
  for (int k : keys) {
    const int c = Value::TotalOrderCompare(a[k], b[k]);
    if (c != 0) return c;
  }
  return 0;
}

size_t Row::HashOn(const Row& a, const std::vector<int>& keys) {
  size_t h = 0xcbf29ce484222325ULL;
  for (int k : keys) {
    h ^= a[k].Hash();
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool Row::AnyNullOn(const std::vector<int>& keys) const {
  for (int k : keys) {
    if (values_[k].is_null()) return true;
  }
  return false;
}

std::string Row::ToString() const {
  std::ostringstream oss;
  oss << "[";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) oss << ", ";
    oss << values_[i].ToString();
  }
  oss << "]";
  return oss.str();
}

}  // namespace nestra
