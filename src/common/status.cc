#include "common/status.h"

namespace nestra {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kTypeError:
      return "Type error";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kInternal:
      return "Internal error";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace nestra
