#ifndef NESTRA_STORAGE_IO_SIM_H_
#define NESTRA_STORAGE_IO_SIM_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace nestra {

class Table;

/// \brief Configuration of the simulated storage stack.
///
/// The paper's evaluation ran on a 2005 server: 1 GB of TPC-H data, a 32 MB
/// buffer cache and a single SCSI disk — index-driven nested iteration paid
/// a random read per probe while the nested relational approach's hash
/// joins scanned sequentially. An in-memory reimplementation erases that
/// asymmetry, so the benches reproduce it with this model: base-table pages
/// flow through an LRU buffer pool; a miss costs `random_miss_ms` when the
/// access is random (index probe / rowid fetch) and `seq_miss_ms` when
/// sequential (scan with prefetch).
struct IoSimConfig {
  int64_t rows_per_page = 64;
  int64_t keys_per_page = 256;  // index leaf fan-in
  /// Pool capacity as a fraction of the registered data pages; the paper's
  /// ratio is 32 MB / 1 GB ~= 1/32.
  double pool_fraction = 1.0 / 32.0;
  int64_t min_pool_pages = 64;
  double random_miss_ms = 4.0;  // effective random read (seek + rotate)
  double seq_miss_ms = 0.1;     // prefetched sequential page read
};

/// \brief LRU buffer-pool + disk-latency simulator. Install one globally
/// (benchmarks do; unit tests leave it uninstalled so the engine is
/// unaffected) and register the base tables whose pages should be modelled.
///
/// Intermediate results (TableSourceNode and friends) are intentionally NOT
/// modelled: the paper's measurements equally keep intermediate processing
/// in memory / the cache.
class IoSim {
 public:
  explicit IoSim(IoSimConfig config = {}) : config_(config) {}

  /// Global instance used by instrumented access paths; nullptr (the
  /// default) disables all accounting.
  static IoSim* Get() { return current_; }
  static void Install(IoSim* sim) { current_ = sim; }

  /// Assigns a page range to a base table (idempotent).
  void RegisterTable(const Table* table);

  /// Sequential access to row `row` of a registered table (scans).
  void SeqRow(const Table* table, int64_t row);

  /// Random access to row `row` of a registered table (rowid fetch).
  void RandomRow(const Table* table, int64_t row);

  /// One probe of an index structure with `num_keys` entries; `bucket`
  /// selects the leaf page. `index_id` distinguishes index structures.
  void IndexProbe(const void* index_id, size_t bucket, int64_t num_keys);

  /// Clears pool contents and counters (page ranges stay registered).
  void Reset();

  int64_t random_misses() const { return random_misses_; }
  int64_t seq_misses() const { return seq_misses_; }
  int64_t hits() const { return hits_; }

  /// Simulated I/O time for the accesses since the last Reset().
  double SimMillis() const {
    return static_cast<double>(random_misses_) * config_.random_miss_ms +
           static_cast<double>(seq_misses_) * config_.seq_miss_ms;
  }

  std::string ToString() const;

 private:
  // Touches a global page id; `sequential` picks the miss cost.
  void Access(int64_t page, bool sequential);
  int64_t PoolCapacity() const;

  IoSimConfig config_;
  std::unordered_map<const void*, int64_t> region_base_;
  int64_t next_page_base_ = 0;

  // LRU: most-recent at front.
  std::list<int64_t> lru_;
  std::unordered_map<int64_t, std::list<int64_t>::iterator> in_pool_;

  int64_t random_misses_ = 0;
  int64_t seq_misses_ = 0;
  int64_t hits_ = 0;

  static IoSim* current_;
};

}  // namespace nestra

#endif  // NESTRA_STORAGE_IO_SIM_H_
