#ifndef NESTRA_STORAGE_IO_SIM_H_
#define NESTRA_STORAGE_IO_SIM_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace nestra {

class Table;

/// Outcome of one simulated page access, so instrumented operators can
/// attribute buffer-pool behaviour to themselves (OperatorStats). kNone
/// means the target was not registered with the simulator.
enum class IoAccess { kNone, kHit, kSeqMiss, kRandomMiss };

/// \brief Configuration of the simulated storage stack.
///
/// The paper's evaluation ran on a 2005 server: 1 GB of TPC-H data, a 32 MB
/// buffer cache and a single SCSI disk — index-driven nested iteration paid
/// a random read per probe while the nested relational approach's hash
/// joins scanned sequentially. An in-memory reimplementation erases that
/// asymmetry, so the benches reproduce it with this model: base-table pages
/// flow through an LRU buffer pool; a miss costs `random_miss_ms` when the
/// access is random (index probe / rowid fetch) and `seq_miss_ms` when
/// sequential (scan with prefetch).
struct IoSimConfig {
  int64_t rows_per_page = 64;
  int64_t keys_per_page = 256;  // index leaf fan-in
  /// Pool capacity as a fraction of the registered data pages; the paper's
  /// ratio is 32 MB / 1 GB ~= 1/32.
  double pool_fraction = 1.0 / 32.0;
  int64_t min_pool_pages = 64;
  double random_miss_ms = 4.0;  // effective random read (seek + rotate)
  double seq_miss_ms = 0.1;     // prefetched sequential page read
};

/// \brief LRU buffer-pool + disk-latency simulator. Install one globally
/// (benchmarks do; unit tests leave it uninstalled so the engine is
/// unaffected) and register the base tables whose pages should be modelled.
///
/// Thread-safe: the counters are atomics and the pool state (LRU list,
/// page map, region map) is guarded by a mutex, so morsel-parallel scans
/// may charge accesses concurrently. A per-thread cache short-circuits
/// repeat accesses to the page a thread touched last (a hit, with no LRU
/// movement) without taking the lock. Eviction order under concurrent
/// access depends on scheduling — like a real buffer pool — but totals
/// are exact and single-threaded behaviour is unchanged.
///
/// Intermediate results (TableSourceNode and friends) are intentionally NOT
/// modelled: the paper's measurements equally keep intermediate processing
/// in memory / the cache.
class IoSim {
 public:
  explicit IoSim(IoSimConfig config = {})
      : config_(config), generation_(NextGeneration()) {}

  /// Global instance used by instrumented access paths; nullptr (the
  /// default) disables all accounting.
  static IoSim* Get() { return current_; }
  static void Install(IoSim* sim) { current_ = sim; }

  /// Assigns a page range to a base table (idempotent).
  void RegisterTable(const Table* table);

  /// Sequential access to row `row` of a registered table (scans).
  IoAccess SeqRow(const Table* table, int64_t row);

  /// Outcome totals of one SeqRange call; see below.
  struct RangeCounts {
    int64_t hits = 0;
    int64_t seq_misses = 0;
    int64_t random_misses = 0;
  };

  /// Bulk equivalent of calling SeqRow for every row in [begin_row,
  /// end_row): pages are charged once with the per-page row count added in
  /// bulk, so the returned totals, the global counters, the LRU state and
  /// the per-thread cache all end up exactly as the per-row loop would
  /// leave them — at a fraction of the per-call cost. Batched scans use
  /// this; row-at-a-time scans keep paying per row.
  RangeCounts SeqRange(const Table* table, int64_t begin_row,
                       int64_t end_row);

  /// Random access to row `row` of a registered table (rowid fetch).
  IoAccess RandomRow(const Table* table, int64_t row);

  /// One probe of an index structure with `num_keys` entries; `bucket`
  /// selects the leaf page. `index_id` distinguishes index structures.
  IoAccess IndexProbe(const void* index_id, size_t bucket, int64_t num_keys);

  /// Clears pool contents and counters (page ranges stay registered).
  void Reset();

  int64_t random_misses() const {
    return random_misses_.load(std::memory_order_relaxed);
  }
  int64_t seq_misses() const {
    return seq_misses_.load(std::memory_order_relaxed);
  }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }

  /// Simulated I/O time for the accesses since the last Reset().
  double SimMillis() const {
    return static_cast<double>(random_misses()) * config_.random_miss_ms +
           static_cast<double>(seq_misses()) * config_.seq_miss_ms;
  }

  std::string ToString() const;

 private:
  // Draws a process-unique pool-generation id. Fresh per constructed sim
  // and per Reset(), so a stale per-thread cache can never match a new
  // pool — not even one reusing the same address.
  static uint64_t NextGeneration();
  // Touches a global page id; `sequential` picks the miss cost.
  IoAccess Access(int64_t page, bool sequential);
  // Shared implementation of SeqRow / RandomRow.
  IoAccess Row(const Table* table, int64_t row, bool sequential);
  // Page base of a registered region, or -1 if unregistered.
  int64_t RegionBase(const void* key);
  int64_t PoolCapacity() const;

  IoSimConfig config_;

  // Guards region_base_, next_page_base_, lru_, in_pool_, and the
  // last_* caches.
  mutable std::mutex mu_;
  std::unordered_map<const void*, int64_t> region_base_;
  int64_t next_page_base_ = 0;

  // Hot-path caches. A repeat access to the page touched last is always a
  // hit with the page already at the LRU front, so it can skip the pool
  // lookup and splice without changing counters or eviction order; the
  // region cache skips the region_base_ lookup for runs against one table.
  int64_t last_page_ = -1;
  const void* last_region_key_ = nullptr;
  int64_t last_region_base_ = 0;

  // LRU: most-recent at front.
  std::list<int64_t> lru_;
  std::unordered_map<int64_t, std::list<int64_t>::iterator> in_pool_;

  std::atomic<int64_t> random_misses_{0};
  std::atomic<int64_t> seq_misses_{0};
  std::atomic<int64_t> hits_{0};

  // Pool generation; construction and Reset() draw a fresh process-unique
  // value to invalidate per-thread caches.
  std::atomic<uint64_t> generation_;

  static IoSim* current_;
};

}  // namespace nestra

#endif  // NESTRA_STORAGE_IO_SIM_H_
