#include "storage/hash_index.h"

#include "storage/io_sim.h"

namespace nestra {

HashIndex::HashIndex(const Table& table, int column) : column_(column) {
  map_.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    const Value& v = table.rows()[i][column];
    if (v.is_null()) continue;
    map_[v].push_back(i);
  }
}

const std::vector<int64_t>& HashIndex::Lookup(const Value& key) const {
  if (key.is_null()) return empty_;
  if (IoSim* sim = IoSim::Get()) {
    sim->IndexProbe(this, key.Hash(), num_keys());
  }
  const auto it = map_.find(key);
  if (it == map_.end()) return empty_;
  return it->second;
}

}  // namespace nestra
