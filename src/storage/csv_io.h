#ifndef NESTRA_STORAGE_CSV_IO_H_
#define NESTRA_STORAGE_CSV_IO_H_

#include <string>

#include "common/table.h"

namespace nestra {

/// \brief CSV interchange for tables (RFC-4180-ish: comma separated,
/// double-quote quoting with "" escapes, a mandatory header row).
///
/// Cell syntax on read, driven by the declared schema:
///  * an empty unquoted cell is NULL (a quoted empty cell is the empty
///    string — including as the file's final record);
///  * kInt64 cells parse as decimal integers, kFloat64 as doubles; a value
///    outside the representable range is InvalidArgument, never silently
///    saturated;
///  * kDate cells parse as YYYY-MM-DD;
///  * kString cells are taken verbatim (after unquoting).
///
/// On write, NULLs become empty cells, dates render as YYYY-MM-DD, and
/// strings are quoted when empty or containing a comma, quote, newline or
/// carriage return. WriteCsv ∘ ReadCsv round-trips every table exactly.

/// Parses CSV text whose header must match `schema`'s field names
/// (unqualified comparison) in order.
Result<Table> ReadCsv(const std::string& text, const Schema& schema);

/// Reads a CSV file from disk.
Result<Table> ReadCsvFile(const std::string& path, const Schema& schema);

/// Renders a table as CSV text (header + rows).
std::string WriteCsv(const Table& table);

/// Writes a table to a CSV file.
Status WriteCsvFile(const Table& table, const std::string& path);

}  // namespace nestra

#endif  // NESTRA_STORAGE_CSV_IO_H_
