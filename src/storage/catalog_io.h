#ifndef NESTRA_STORAGE_CATALOG_IO_H_
#define NESTRA_STORAGE_CATALOG_IO_H_

#include <string>

#include "storage/catalog.h"

namespace nestra {

/// \brief Directory persistence for a catalog: one CSV file per table plus
/// a `manifest.nestra` recording schemas (with types and nullability),
/// primary keys and NOT NULL declarations.
///
/// Manifest grammar (line oriented, '#' comments):
///   table <name>
///   column <name> <int64|float64|string|date> <null|notnull>
///   pk <column>          (optional)
///   notnull <column>     (zero or more)
///   end
///
/// Loading registers every table into `catalog` (which must not already
/// contain tables of the same names). Round trips preserve NULLs, types and
/// constraint metadata bit-exactly.

Status SaveCatalog(const Catalog& catalog, const std::string& directory);

Status LoadCatalog(const std::string& directory, Catalog* catalog);

}  // namespace nestra

#endif  // NESTRA_STORAGE_CATALOG_IO_H_
