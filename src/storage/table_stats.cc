#include "storage/table_stats.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>
#include <unordered_set>

namespace nestra {

namespace {

// splitmix64 finalizer over Value::SqlHash: SqlHash is consistent with SQL
// key equality (int 1 collides with float 1.0, as distinct-counting wants)
// but is not guaranteed uniform in its high bits, which HyperLogLog needs.
uint64_t MixHash(uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

// Deterministic HyperLogLog with 2^12 registers (~1.6% standard error).
// Only consulted once the exact hash set overflows kExactDistinctCap.
class Hll {
 public:
  static constexpr int kBits = 12;
  static constexpr int kRegisters = 1 << kBits;

  void Add(uint64_t hash) {
    const uint32_t idx = static_cast<uint32_t>(hash >> (64 - kBits));
    const uint64_t rest = hash << kBits;
    // Rank = leading zeros of the remaining 52 bits, + 1. An all-zero rest
    // gets the max rank.
    uint8_t rank = 1;
    if (rest == 0) {
      rank = 64 - kBits + 1;
    } else {
      uint64_t r = rest;
      while ((r & (1ULL << 63)) == 0) {
        ++rank;
        r <<= 1;
      }
    }
    if (rank > registers_[idx]) registers_[idx] = rank;
  }

  int64_t Estimate() const {
    const double m = kRegisters;
    double sum = 0;
    int zeros = 0;
    for (const uint8_t r : registers_) {
      sum += std::ldexp(1.0, -static_cast<int>(r));
      if (r == 0) ++zeros;
    }
    constexpr double kAlpha = 0.7213 / (1.0 + 1.079 / kRegisters);
    double estimate = kAlpha * m * m / sum;
    if (estimate <= 2.5 * m && zeros > 0) {
      estimate = m * std::log(m / zeros);  // small-range correction
    }
    return static_cast<int64_t>(estimate + 0.5);
  }

 private:
  uint8_t registers_[kRegisters] = {};
};

// Exact distinct counting switches to the sketch past this many distinct
// hashes; well above every test table and far below bench-scale lineitem.
constexpr size_t kExactDistinctCap = 1 << 16;

struct ColumnAccumulator {
  ColumnStats stats;
  std::unordered_set<uint64_t> exact;
  std::unique_ptr<Hll> sketch;
  bool saw_non_numeric = false;

  void Add(const Value& v) {
    if (v.is_null()) {
      ++stats.null_count;
      return;
    }
    ++stats.non_null_count;
    const uint64_t h = MixHash(static_cast<uint64_t>(v.SqlHash()));
    if (sketch == nullptr) {
      exact.insert(h);
      if (exact.size() > kExactDistinctCap) {
        sketch = std::make_unique<Hll>();
        for (const uint64_t e : exact) sketch->Add(e);
        exact.clear();
      }
    } else {
      sketch->Add(h);
    }
    if (v.is_string()) {
      saw_non_numeric = true;
      return;
    }
    const double d = *v.AsDouble();
    if (!stats.has_range) {
      stats.has_range = true;
      stats.min = stats.max = d;
      stats.integer_only = v.is_int();
      if (v.is_int()) stats.min_i64 = stats.max_i64 = v.int64();
    } else {
      stats.min = std::min(stats.min, d);
      stats.max = std::max(stats.max, d);
      if (v.is_int()) {
        if (stats.integer_only) {
          stats.min_i64 = std::min(stats.min_i64, v.int64());
          stats.max_i64 = std::max(stats.max_i64, v.int64());
        }
      } else {
        stats.integer_only = false;
      }
    }
  }

  ColumnStats Finish() {
    if (saw_non_numeric) {
      stats.has_range = false;
      stats.integer_only = false;
    }
    if (sketch != nullptr) {
      stats.distinct = sketch->Estimate();
      stats.distinct_exact = false;
    } else {
      stats.distinct = static_cast<int64_t>(exact.size());
      stats.distinct_exact = true;
    }
    if (!stats.integer_only) {
      stats.min_i64 = 0;
      stats.max_i64 = 0;
    }
    return stats;
  }
};

}  // namespace

TableStats CollectTableStats(const Table& table) {
  TableStats out;
  const int num_cols = table.schema().num_fields();
  out.row_count = table.num_rows();
  std::vector<ColumnAccumulator> accs(static_cast<size_t>(num_cols));

  TableZoneMap& zones = out.zones;
  zones.num_columns = num_cols;
  zones.num_granules =
      (out.row_count + kZoneGranuleRows - 1) / kZoneGranuleRows;
  zones.entries.assign(
      static_cast<size_t>(zones.num_granules * num_cols), ZoneEntry{});

  const std::vector<Row>& rows = table.rows();
  for (int64_t i = 0; i < out.row_count; ++i) {
    const Row& row = rows[static_cast<size_t>(i)];
    const int64_t g = i / kZoneGranuleRows;
    for (int c = 0; c < num_cols; ++c) {
      const Value& v = row[c];
      accs[static_cast<size_t>(c)].Add(v);
      if (v.is_null()) continue;
      ZoneEntry& zone = zones.entries[static_cast<size_t>(g * num_cols + c)];
      zone.all_null = false;
      if (v.is_string()) continue;
      const double d = *v.AsDouble();
      if (!zone.has_range) {
        zone.has_range = true;
        zone.min = zone.max = d;
      } else {
        zone.min = std::min(zone.min, d);
        zone.max = std::max(zone.max, d);
      }
    }
  }

  out.columns.reserve(static_cast<size_t>(num_cols));
  for (ColumnAccumulator& acc : accs) out.columns.push_back(acc.Finish());
  return out;
}

std::string TableStats::ToString() const {
  std::ostringstream oss;
  oss << "rows=" << row_count << " granules=" << zones.num_granules;
  for (size_t c = 0; c < columns.size(); ++c) {
    const ColumnStats& s = columns[c];
    oss << "\n  col " << c << ": nulls=" << s.null_count
        << " distinct" << (s.distinct_exact ? "=" : "~=") << s.distinct;
    if (s.has_range) {
      if (s.integer_only) {
        oss << " range=[" << s.min_i64 << ", " << s.max_i64 << "]";
      } else {
        oss << " range=[" << s.min << ", " << s.max << "]";
      }
    }
  }
  return oss.str();
}

}  // namespace nestra
