#ifndef NESTRA_STORAGE_SORTED_INDEX_H_
#define NESTRA_STORAGE_SORTED_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/table.h"

namespace nestra {

/// \brief Ordered index over one column: supports range probes
/// (theta in {<, <=, >, >=, =}), modelling a B+-tree leaf scan.
///
/// NULL key values are excluded. Entries are (value, row id) sorted by value
/// then row id.
class SortedIndex {
 public:
  SortedIndex(const Table& table, int column);

  /// Row ids r with table[r][column] theta `key` (theta != kNe; an
  /// inequality probe would be a full scan and is rejected by returning all
  /// non-null entries is NOT done — callers handle kNe themselves).
  std::vector<int64_t> Lookup(CmpOp op, const Value& key) const;

  /// Row ids with lo <= value <= hi (either bound optional via NULL Value).
  std::vector<int64_t> Range(const Value& lo, bool lo_inclusive,
                             const Value& hi, bool hi_inclusive) const;

  int column() const { return column_; }
  int64_t num_entries() const { return static_cast<int64_t>(entries_.size()); }

 private:
  struct Entry {
    Value value;
    int64_t row;
  };

  // Index of the first entry >= key (lower bound) / > key (upper bound).
  size_t LowerBound(const Value& key) const;
  size_t UpperBound(const Value& key) const;

  int column_;
  std::vector<Entry> entries_;
};

}  // namespace nestra

#endif  // NESTRA_STORAGE_SORTED_INDEX_H_
