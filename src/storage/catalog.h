#ifndef NESTRA_STORAGE_CATALOG_H_
#define NESTRA_STORAGE_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "common/table.h"
#include "storage/btree_index.h"
#include "storage/hash_index.h"
#include "storage/sorted_index.h"
#include "storage/table_stats.h"

namespace nestra {

/// \brief Constraint and statistics metadata for one base table.
struct TableMetadata {
  /// The unique non-NULL key column the paper assumes every relation has
  /// ("we assume that each relation has a unique non-null attribute served
  /// as a primary key"). Unqualified name.
  std::string primary_key;
  /// Columns (beyond the PK) declared NOT NULL. The native baseline's
  /// antijoin rewrite is only legal when the relevant columns appear here —
  /// exactly System A's behaviour in Section 5.2.
  std::set<std::string> not_null_columns;
  /// Columns observed entirely non-NULL by the one-pass scan RegisterTable
  /// runs at load time. Sound for execution-time proofs because catalog
  /// tables are immutable after registration; advisory verifier rules use
  /// declared constraints only (see PropertyAnalyzer).
  std::set<std::string> observed_not_null;
};

/// \brief Named base tables plus lazily built and cached indexes.
///
/// The catalog owns table storage; execution operators reference tables by
/// pointer and must not outlive the catalog.
///
/// Thread safety: name lookups take a shared lock on `mu_`; the DDL mutators
/// (RegisterTable / DropTable / AddNotNull / DropNotNull) take it exclusively.
/// Lazy index construction is serialized per table by `Entry::index_mu`, so
/// concurrent queries may race to the same index and still build it exactly
/// once. Per-row execution never touches the catalog: operators cache the
/// `const Table*` / index pointers they obtain once per query, and std::map
/// node addresses are stable until erase, so those pointers stay valid as
/// long as no DropTable races a running query (the session layer's schema
/// lock in src/server/ guarantees that for managed sessions).
class Catalog {
 public:
  Catalog() = default;

  // Non-copyable and non-movable (indexes hold row ids into owned tables;
  // entries own mutexes, and concurrent readers hold pointers into us).
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = delete;
  Catalog& operator=(Catalog&&) = delete;

  /// Registers a table. `primary_key` must name a column of `table` (may be
  /// empty for keyless test tables — then NRA plans add a synthetic row-id
  /// key at scan time). Fails on duplicate names or unknown PK columns.
  /// The load-time NULL scan runs on the argument before the exclusive lock
  /// is taken, keeping the critical section to the map insert itself.
  Status RegisterTable(const std::string& name, Table table,
                       const std::string& primary_key = "",
                       std::set<std::string> not_null_columns = {});

  /// Drops a table and its cached indexes.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  Result<const Table*> GetTable(const std::string& name) const;
  Result<const TableMetadata*> GetMetadata(const std::string& name) const;

  /// Load-time statistics (per-column min/max, null counts, distinct
  /// estimates, zone map) collected by RegisterTable. Same lifetime contract
  /// as GetTable: the pointer stays valid as long as no DropTable races a
  /// running query. Stats die with the entry — a drop + re-register yields
  /// fresh stats AND a new TableVersion, so prepared plans cannot reuse
  /// decisions derived from the old data.
  Result<const TableStats*> GetStats(const std::string& name) const;

  /// True if `column` (unqualified) of `table_name` is declared NOT NULL —
  /// either the PK or listed in not_null_columns.
  bool IsNotNull(const std::string& table_name,
                 const std::string& column) const;

  /// True if `column` (unqualified) of `table_name` is provably non-NULL for
  /// execution purposes: declared NOT NULL (per IsNotNull) or observed
  /// entirely non-NULL by the registration-time column scan.
  bool ProvenNotNull(const std::string& table_name,
                     const std::string& column) const;

  /// Declares a column NOT NULL after registration (used by benches to
  /// toggle the paper's "NOT NULL constraint" scenarios).
  Status AddNotNull(const std::string& table_name, const std::string& column);
  /// Removes a NOT NULL declaration (cannot remove the PK's implicit one).
  Status DropNotNull(const std::string& table_name, const std::string& column);

  /// Returns (building and caching on first use) an equality index.
  Result<const HashIndex*> GetHashIndex(const std::string& table_name,
                                        const std::string& column) const;

  /// Returns (building and caching on first use) an ordered index.
  Result<const SortedIndex*> GetSortedIndex(const std::string& table_name,
                                            const std::string& column) const;

  /// Returns (building and caching on first use) a B+-tree index — the
  /// structure the modelled System A keeps on base tables; serves ordered
  /// and inequality probes with per-level simulated I/O.
  Result<const BTreeIndex*> GetBTreeIndex(const std::string& table_name,
                                          const std::string& column) const;

  std::vector<std::string> TableNames() const;

  /// Monotonic per-table schema version, bumped on every DDL that affects
  /// the table: (re-)registration, drop, and NOT NULL changes (constraint
  /// edits flip plan decisions such as the two-valued fast path, so prepared
  /// plans must treat them as schema changes). Returns 0 for tables that do
  /// not currently exist — registered tables always have version >= 1, so a
  /// version recorded at PREPARE time never matches after a drop.
  uint64_t TableVersion(const std::string& name) const;

  /// Catalog-wide DDL generation: bumped by every successful mutator call.
  uint64_t ddl_generation() const {
    return ddl_generation_.load(std::memory_order_acquire);
  }

 private:
  struct Entry {
    Table table;
    TableMetadata meta;
    TableStats stats;      // collected at registration, immutable afterwards
    uint64_t version = 0;  // snapshot of ddl_generation_ at last change
    // Serializes lazy index construction for this table; cached index reads
    // and builds via const methods are safe from concurrent queries.
    mutable std::mutex index_mu;
    std::map<std::string, std::unique_ptr<HashIndex>> hash_indexes;
    std::map<std::string, std::unique_ptr<SortedIndex>> sorted_indexes;
    std::map<std::string, std::unique_ptr<BTreeIndex>> btree_indexes;
  };

  // Callers must hold mu_ (shared suffices: entry mutation beyond this point
  // is guarded by index_mu or happens under the exclusive DDL lock).
  Result<Entry*> GetEntryLocked(const std::string& name) const;

  // Guards tables_ map shape and entry table/meta/version fields.
  mutable std::shared_mutex mu_;
  // map (not unordered) for deterministic TableNames() output.
  mutable std::map<std::string, Entry> tables_;
  std::atomic<uint64_t> ddl_generation_{0};
};

}  // namespace nestra

#endif  // NESTRA_STORAGE_CATALOG_H_
