#ifndef NESTRA_STORAGE_CATALOG_H_
#define NESTRA_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/table.h"
#include "storage/btree_index.h"
#include "storage/hash_index.h"
#include "storage/sorted_index.h"

namespace nestra {

/// \brief Constraint and statistics metadata for one base table.
struct TableMetadata {
  /// The unique non-NULL key column the paper assumes every relation has
  /// ("we assume that each relation has a unique non-null attribute served
  /// as a primary key"). Unqualified name.
  std::string primary_key;
  /// Columns (beyond the PK) declared NOT NULL. The native baseline's
  /// antijoin rewrite is only legal when the relevant columns appear here —
  /// exactly System A's behaviour in Section 5.2.
  std::set<std::string> not_null_columns;
  /// Columns observed entirely non-NULL by the one-pass scan RegisterTable
  /// runs at load time. Sound for execution-time proofs because catalog
  /// tables are immutable after registration; advisory verifier rules use
  /// declared constraints only (see PropertyAnalyzer).
  std::set<std::string> observed_not_null;
};

/// \brief Named base tables plus lazily built and cached indexes.
///
/// The catalog owns table storage; execution operators reference tables by
/// pointer and must not outlive the catalog.
class Catalog {
 public:
  Catalog() = default;

  // Non-copyable (indexes hold row ids into owned tables).
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a table. `primary_key` must name a column of `table` (may be
  /// empty for keyless test tables — then NRA plans add a synthetic row-id
  /// key at scan time). Fails on duplicate names or unknown PK columns.
  Status RegisterTable(const std::string& name, Table table,
                       const std::string& primary_key = "",
                       std::set<std::string> not_null_columns = {});

  /// Drops a table and its cached indexes.
  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const;
  Result<const Table*> GetTable(const std::string& name) const;
  Result<const TableMetadata*> GetMetadata(const std::string& name) const;

  /// True if `column` (unqualified) of `table_name` is declared NOT NULL —
  /// either the PK or listed in not_null_columns.
  bool IsNotNull(const std::string& table_name,
                 const std::string& column) const;

  /// True if `column` (unqualified) of `table_name` is provably non-NULL for
  /// execution purposes: declared NOT NULL (per IsNotNull) or observed
  /// entirely non-NULL by the registration-time column scan.
  bool ProvenNotNull(const std::string& table_name,
                     const std::string& column) const;

  /// Declares a column NOT NULL after registration (used by benches to
  /// toggle the paper's "NOT NULL constraint" scenarios).
  Status AddNotNull(const std::string& table_name, const std::string& column);
  /// Removes a NOT NULL declaration (cannot remove the PK's implicit one).
  Status DropNotNull(const std::string& table_name, const std::string& column);

  /// Returns (building and caching on first use) an equality index.
  Result<const HashIndex*> GetHashIndex(const std::string& table_name,
                                        const std::string& column) const;

  /// Returns (building and caching on first use) an ordered index.
  Result<const SortedIndex*> GetSortedIndex(const std::string& table_name,
                                            const std::string& column) const;

  /// Returns (building and caching on first use) a B+-tree index — the
  /// structure the modelled System A keeps on base tables; serves ordered
  /// and inequality probes with per-level simulated I/O.
  Result<const BTreeIndex*> GetBTreeIndex(const std::string& table_name,
                                          const std::string& column) const;

  std::vector<std::string> TableNames() const;

 private:
  struct Entry {
    Table table;
    TableMetadata meta;
    // Cached indexes keyed by column name. mutable access via const methods;
    // single-threaded by design.
    std::map<std::string, std::unique_ptr<HashIndex>> hash_indexes;
    std::map<std::string, std::unique_ptr<SortedIndex>> sorted_indexes;
    std::map<std::string, std::unique_ptr<BTreeIndex>> btree_indexes;
  };

  Result<Entry*> GetEntry(const std::string& name) const;

  // map (not unordered) for deterministic TableNames() output.
  mutable std::map<std::string, Entry> tables_;
};

}  // namespace nestra

#endif  // NESTRA_STORAGE_CATALOG_H_
