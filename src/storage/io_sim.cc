#include "storage/io_sim.h"

#include <algorithm>
#include <sstream>

#include "common/table.h"

namespace nestra {

namespace {

// Per-thread access cache: a repeat access to the page this thread touched
// last is a guaranteed hit in serial execution, so it can be counted with
// one relaxed increment and no lock. `generation` ties the cache to one
// pool generation — construction and Reset() draw fresh ids, invalidating
// every thread's cache.
struct SimTlsCache {
  uint64_t generation = 0;  // 0 never matches a live pool
  const void* table = nullptr;
  int64_t base = 0;
  int64_t page = -1;
};

thread_local SimTlsCache tls_cache;

}  // namespace

uint64_t IoSim::NextGeneration() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

IoSim* IoSim::current_ = nullptr;

void IoSim::RegisterTable(const Table* table) {
  std::lock_guard<std::mutex> lock(mu_);
  if (region_base_.count(table) > 0) return;
  region_base_[table] = next_page_base_;
  const int64_t pages =
      (table->num_rows() + config_.rows_per_page - 1) / config_.rows_per_page;
  next_page_base_ += std::max<int64_t>(pages, 1);
}

int64_t IoSim::PoolCapacity() const {
  // At least one page: the Access fast path relies on the most recently
  // touched page never being evicted by its own insertion.
  return std::max<int64_t>(
      std::max<int64_t>(1, config_.min_pool_pages),
      static_cast<int64_t>(static_cast<double>(next_page_base_) *
                           config_.pool_fraction));
}

IoAccess IoSim::Access(int64_t page, bool sequential) {
  if (page == last_page_) {
    // The page touched last is at the LRU front and cannot have been
    // evicted since, so this is a hit and the splice would be a no-op.
    hits_.fetch_add(1, std::memory_order_relaxed);
    return IoAccess::kHit;
  }
  last_page_ = page;
  const auto it = in_pool_.find(page);
  if (it != in_pool_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    lru_.splice(lru_.begin(), lru_, it->second);
    return IoAccess::kHit;
  }
  if (sequential) {
    seq_misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    random_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  lru_.push_front(page);
  in_pool_[page] = lru_.begin();
  const int64_t capacity = PoolCapacity();
  while (static_cast<int64_t>(lru_.size()) > capacity) {
    in_pool_.erase(lru_.back());
    lru_.pop_back();
  }
  return sequential ? IoAccess::kSeqMiss : IoAccess::kRandomMiss;
}

int64_t IoSim::RegionBase(const void* key) {
  if (key == last_region_key_) return last_region_base_;
  const auto it = region_base_.find(key);
  if (it == region_base_.end()) return -1;
  last_region_key_ = key;
  last_region_base_ = it->second;
  return it->second;
}

IoAccess IoSim::Row(const Table* table, int64_t row, bool sequential) {
  SimTlsCache& cache = tls_cache;
  if (cache.table == table &&
      cache.generation == generation_.load(std::memory_order_relaxed) &&
      cache.page == cache.base + row / config_.rows_per_page) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return IoAccess::kHit;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t base = RegionBase(table);
  if (base < 0) return IoAccess::kNone;
  const int64_t page = base + row / config_.rows_per_page;
  const IoAccess access = Access(page, sequential);
  cache = {generation_.load(std::memory_order_relaxed), table, base, page};
  return access;
}

IoAccess IoSim::SeqRow(const Table* table, int64_t row) {
  return Row(table, row, /*sequential=*/true);
}

IoSim::RangeCounts IoSim::SeqRange(const Table* table, int64_t begin_row,
                                   int64_t end_row) {
  RangeCounts counts;
  if (begin_row >= end_row) return counts;
  const int64_t rpp = config_.rows_per_page;
  int64_t row = begin_row;

  // Leading rows on the thread's cached page are lock-free hits, exactly
  // as SeqRow's fast path counts them one by one.
  SimTlsCache& cache = tls_cache;
  if (cache.table == table &&
      cache.generation == generation_.load(std::memory_order_relaxed) &&
      cache.page == cache.base + begin_row / rpp) {
    const int64_t page_end = (begin_row / rpp + 1) * rpp;
    const int64_t n = std::min(end_row, page_end) - begin_row;
    hits_.fetch_add(n, std::memory_order_relaxed);
    counts.hits += n;
    row += n;
  }
  if (row >= end_row) return counts;

  std::lock_guard<std::mutex> lock(mu_);
  const int64_t base = RegionBase(table);
  if (base < 0) return counts;  // unregistered: every row would be kNone
  int64_t page = 0;
  while (row < end_row) {
    page = base + row / rpp;
    const int64_t page_end = (row / rpp + 1) * rpp;
    const int64_t n = std::min(end_row, page_end) - row;
    // First row of the page goes through the pool; the remaining n-1 rows
    // are guaranteed hits on the page just touched (SeqRow's per-thread
    // cache path) and never move the LRU.
    switch (Access(page, /*sequential=*/true)) {
      case IoAccess::kHit:
        ++counts.hits;
        break;
      case IoAccess::kSeqMiss:
        ++counts.seq_misses;
        break;
      case IoAccess::kRandomMiss:
        ++counts.random_misses;
        break;
      case IoAccess::kNone:
        break;
    }
    if (n > 1) {
      hits_.fetch_add(n - 1, std::memory_order_relaxed);
      counts.hits += n - 1;
    }
    row += n;
  }
  cache = {generation_.load(std::memory_order_relaxed), table, base, page};
  return counts;
}

IoAccess IoSim::RandomRow(const Table* table, int64_t row) {
  return Row(table, row, /*sequential=*/false);
}

IoAccess IoSim::IndexProbe(const void* index_id, size_t bucket,
                           int64_t num_keys) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = region_base_.find(index_id);
  if (it == region_base_.end()) {
    // Lazily allocate an index region sized by its key count.
    const int64_t pages =
        std::max<int64_t>(1, num_keys / config_.keys_per_page);
    region_base_[index_id] = next_page_base_;
    next_page_base_ += pages;
    it = region_base_.find(index_id);
  }
  const int64_t pages =
      std::max<int64_t>(1, num_keys / config_.keys_per_page);
  return Access(it->second + static_cast<int64_t>(bucket % pages),
                /*sequential=*/false);
}

void IoSim::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  in_pool_.clear();
  last_page_ = -1;
  generation_.store(NextGeneration(), std::memory_order_relaxed);
  random_misses_.store(0, std::memory_order_relaxed);
  seq_misses_.store(0, std::memory_order_relaxed);
  hits_.store(0, std::memory_order_relaxed);
}

std::string IoSim::ToString() const {
  int64_t pages = 0;
  int64_t capacity = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pages = next_page_base_;
    capacity = PoolCapacity();
  }
  std::ostringstream oss;
  oss << "IoSim{pages=" << pages << ", pool=" << capacity
      << ", random_misses=" << random_misses()
      << ", seq_misses=" << seq_misses() << ", hits=" << hits()
      << ", sim=" << SimMillis() << "ms}";
  return oss.str();
}

}  // namespace nestra
