#include "storage/io_sim.h"

#include <algorithm>
#include <sstream>

#include "common/table.h"

namespace nestra {

IoSim* IoSim::current_ = nullptr;

void IoSim::RegisterTable(const Table* table) {
  if (region_base_.count(table) > 0) return;
  region_base_[table] = next_page_base_;
  const int64_t pages =
      (table->num_rows() + config_.rows_per_page - 1) / config_.rows_per_page;
  next_page_base_ += std::max<int64_t>(pages, 1);
}

int64_t IoSim::PoolCapacity() const {
  return std::max<int64_t>(
      config_.min_pool_pages,
      static_cast<int64_t>(static_cast<double>(next_page_base_) *
                           config_.pool_fraction));
}

void IoSim::Access(int64_t page, bool sequential) {
  const auto it = in_pool_.find(page);
  if (it != in_pool_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (sequential) {
    ++seq_misses_;
  } else {
    ++random_misses_;
  }
  lru_.push_front(page);
  in_pool_[page] = lru_.begin();
  const int64_t capacity = PoolCapacity();
  while (static_cast<int64_t>(lru_.size()) > capacity) {
    in_pool_.erase(lru_.back());
    lru_.pop_back();
  }
}

void IoSim::SeqRow(const Table* table, int64_t row) {
  const auto it = region_base_.find(table);
  if (it == region_base_.end()) return;
  Access(it->second + row / config_.rows_per_page, /*sequential=*/true);
}

void IoSim::RandomRow(const Table* table, int64_t row) {
  const auto it = region_base_.find(table);
  if (it == region_base_.end()) return;
  Access(it->second + row / config_.rows_per_page, /*sequential=*/false);
}

void IoSim::IndexProbe(const void* index_id, size_t bucket,
                       int64_t num_keys) {
  auto it = region_base_.find(index_id);
  if (it == region_base_.end()) {
    // Lazily allocate an index region sized by its key count.
    const int64_t pages =
        std::max<int64_t>(1, num_keys / config_.keys_per_page);
    region_base_[index_id] = next_page_base_;
    next_page_base_ += pages;
    it = region_base_.find(index_id);
  }
  const int64_t pages =
      std::max<int64_t>(1, num_keys / config_.keys_per_page);
  Access(it->second + static_cast<int64_t>(bucket % pages),
         /*sequential=*/false);
}

void IoSim::Reset() {
  lru_.clear();
  in_pool_.clear();
  random_misses_ = 0;
  seq_misses_ = 0;
  hits_ = 0;
}

std::string IoSim::ToString() const {
  std::ostringstream oss;
  oss << "IoSim{pages=" << next_page_base_ << ", pool=" << PoolCapacity()
      << ", random_misses=" << random_misses_
      << ", seq_misses=" << seq_misses_ << ", hits=" << hits_
      << ", sim=" << SimMillis() << "ms}";
  return oss.str();
}

}  // namespace nestra
