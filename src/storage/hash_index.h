#ifndef NESTRA_STORAGE_HASH_INDEX_H_
#define NESTRA_STORAGE_HASH_INDEX_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/hash_key.h"
#include "common/table.h"

namespace nestra {

/// \brief Equality index over one column of a table: value -> row ids.
///
/// NULL key values are not indexed (an equality probe can never match them
/// under SQL semantics). Key matching follows the SQL comparator
/// (common/hash_key.h), so an int64-keyed index answers float64 probes of
/// equal numeric value. Used by the index-nested-loop baseline ("access by
/// index rowid" in the paper's description of System A); the nested
/// relational approach itself never requires indexes.
class HashIndex {
 public:
  /// Builds the index over `table.rows()[i][column]` for all i.
  HashIndex(const Table& table, int column);

  /// Row ids whose key equals `key`; empty for NULL probes.
  const std::vector<int64_t>& Lookup(const Value& key) const;

  int column() const { return column_; }
  int64_t num_keys() const { return static_cast<int64_t>(map_.size()); }

 private:
  int column_;
  std::unordered_map<Value, std::vector<int64_t>, SqlValueHash, SqlValueEq>
      map_;
  std::vector<int64_t> empty_;
};

}  // namespace nestra

#endif  // NESTRA_STORAGE_HASH_INDEX_H_
