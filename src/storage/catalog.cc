#include "storage/catalog.h"

namespace nestra {

Status Catalog::RegisterTable(const std::string& name, Table table,
                              const std::string& primary_key,
                              std::set<std::string> not_null_columns) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  if (!primary_key.empty() &&
      table.schema().IndexOfExact(primary_key) < 0) {
    return Status::InvalidArgument("primary key column '" + primary_key +
                                   "' not in schema of table " + name);
  }
  for (const std::string& c : not_null_columns) {
    if (table.schema().IndexOfExact(c) < 0) {
      return Status::InvalidArgument("NOT NULL column '" + c +
                                     "' not in schema of table " + name);
    }
  }
  Entry e;
  e.table = std::move(table);
  e.meta.primary_key = primary_key;
  e.meta.not_null_columns = std::move(not_null_columns);
  // One-pass observed-non-NULL scan. Tables are immutable once registered,
  // so "no NULL seen at load time" is a sound execution-time proof even for
  // columns with no declared constraint.
  const Schema& schema = e.table.schema();
  const size_t num_cols = schema.fields().size();
  std::vector<bool> maybe(num_cols, true);
  size_t remaining = num_cols;
  for (const Row& row : e.table.rows()) {
    if (remaining == 0) break;
    for (size_t c = 0; c < num_cols; ++c) {
      if (maybe[c] && row[c].is_null()) {
        maybe[c] = false;
        --remaining;
      }
    }
  }
  for (size_t c = 0; c < num_cols; ++c) {
    if (maybe[c]) e.meta.observed_not_null.insert(schema.fields()[c].name);
  }
  tables_.emplace(name, std::move(e));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table not found: " + name);
  }
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Result<Catalog::Entry*> Catalog::GetEntry(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return &it->second;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntry(name));
  return const_cast<const Table*>(&e->table);
}

Result<const TableMetadata*> Catalog::GetMetadata(
    const std::string& name) const {
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntry(name));
  return const_cast<const TableMetadata*>(&e->meta);
}

bool Catalog::IsNotNull(const std::string& table_name,
                        const std::string& column) const {
  const auto it = tables_.find(table_name);
  if (it == tables_.end()) return false;
  const TableMetadata& meta = it->second.meta;
  if (!meta.primary_key.empty() && meta.primary_key == column) return true;
  return meta.not_null_columns.count(column) > 0;
}

bool Catalog::ProvenNotNull(const std::string& table_name,
                            const std::string& column) const {
  if (IsNotNull(table_name, column)) return true;
  const auto it = tables_.find(table_name);
  if (it == tables_.end()) return false;
  return it->second.meta.observed_not_null.count(column) > 0;
}

Status Catalog::AddNotNull(const std::string& table_name,
                           const std::string& column) {
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntry(table_name));
  if (e->table.schema().IndexOfExact(column) < 0) {
    return Status::InvalidArgument("NOT NULL column '" + column +
                                   "' not in schema of table " + table_name);
  }
  e->meta.not_null_columns.insert(column);
  return Status::OK();
}

Status Catalog::DropNotNull(const std::string& table_name,
                            const std::string& column) {
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntry(table_name));
  e->meta.not_null_columns.erase(column);
  return Status::OK();
}

Result<const HashIndex*> Catalog::GetHashIndex(const std::string& table_name,
                                               const std::string& column) const {
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntry(table_name));
  auto it = e->hash_indexes.find(column);
  if (it == e->hash_indexes.end()) {
    const int col = e->table.schema().IndexOfExact(column);
    if (col < 0) {
      return Status::NotFound("column '" + column + "' not in table " +
                              table_name);
    }
    it = e->hash_indexes
             .emplace(column, std::make_unique<HashIndex>(e->table, col))
             .first;
  }
  return const_cast<const HashIndex*>(it->second.get());
}

Result<const SortedIndex*> Catalog::GetSortedIndex(
    const std::string& table_name, const std::string& column) const {
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntry(table_name));
  auto it = e->sorted_indexes.find(column);
  if (it == e->sorted_indexes.end()) {
    const int col = e->table.schema().IndexOfExact(column);
    if (col < 0) {
      return Status::NotFound("column '" + column + "' not in table " +
                              table_name);
    }
    it = e->sorted_indexes
             .emplace(column, std::make_unique<SortedIndex>(e->table, col))
             .first;
  }
  return const_cast<const SortedIndex*>(it->second.get());
}

Result<const BTreeIndex*> Catalog::GetBTreeIndex(
    const std::string& table_name, const std::string& column) const {
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntry(table_name));
  auto it = e->btree_indexes.find(column);
  if (it == e->btree_indexes.end()) {
    const int col = e->table.schema().IndexOfExact(column);
    if (col < 0) {
      return Status::NotFound("column '" + column + "' not in table " +
                              table_name);
    }
    it = e->btree_indexes
             .emplace(column, std::make_unique<BTreeIndex>(e->table, col))
             .first;
  }
  return const_cast<const BTreeIndex*>(it->second.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace nestra
