#include "storage/catalog.h"

namespace nestra {

Status Catalog::RegisterTable(const std::string& name, Table table,
                              const std::string& primary_key,
                              std::set<std::string> not_null_columns) {
  if (!primary_key.empty() &&
      table.schema().IndexOfExact(primary_key) < 0) {
    return Status::InvalidArgument("primary key column '" + primary_key +
                                   "' not in schema of table " + name);
  }
  for (const std::string& c : not_null_columns) {
    if (table.schema().IndexOfExact(c) < 0) {
      return Status::InvalidArgument("NOT NULL column '" + c +
                                     "' not in schema of table " + name);
    }
  }
  // One-pass stats scan (null counts, numeric min/max, distinct estimates,
  // zone map), run on the argument BEFORE taking the exclusive lock: the
  // scan only reads `table`, which no other thread can see yet, so
  // concurrent lookups of other tables proceed unblocked while a large load
  // is scanned. Tables are immutable once registered, so both the
  // observed-non-NULL proof and the planner stats stay sound for the
  // entry's lifetime; re-registration replaces them and bumps the version,
  // which is what invalidates prepared plans that baked in stats decisions.
  TableMetadata meta;
  meta.primary_key = primary_key;
  meta.not_null_columns = std::move(not_null_columns);
  const Schema& schema = table.schema();
  const size_t num_cols = schema.fields().size();
  TableStats stats = CollectTableStats(table);
  for (size_t c = 0; c < num_cols; ++c) {
    if (stats.columns[c].null_count == 0) {
      meta.observed_not_null.insert(schema.fields()[c].name);
    }
  }

  std::unique_lock<std::shared_mutex> lock(mu_);
  // Entries own a mutex and are not movable, so construct in place and fill.
  auto [it, inserted] = tables_.try_emplace(name);
  if (!inserted) {
    return Status::AlreadyExists("table already registered: " + name);
  }
  Entry& e = it->second;
  e.table = std::move(table);
  e.meta = std::move(meta);
  e.stats = std::move(stats);
  e.version = ddl_generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table not found: " + name);
  }
  ddl_generation_.fetch_add(1, std::memory_order_acq_rel);
  return Status::OK();
}

bool Catalog::HasTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return tables_.count(name) > 0;
}

Result<Catalog::Entry*> Catalog::GetEntryLocked(
    const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table not found: " + name);
  }
  return &it->second;
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(name));
  return const_cast<const Table*>(&e->table);
}

Result<const TableMetadata*> Catalog::GetMetadata(
    const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(name));
  return const_cast<const TableMetadata*>(&e->meta);
}

Result<const TableStats*> Catalog::GetStats(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(name));
  return const_cast<const TableStats*>(&e->stats);
}

bool Catalog::IsNotNull(const std::string& table_name,
                        const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = tables_.find(table_name);
  if (it == tables_.end()) return false;
  const TableMetadata& meta = it->second.meta;
  if (!meta.primary_key.empty() && meta.primary_key == column) return true;
  return meta.not_null_columns.count(column) > 0;
}

bool Catalog::ProvenNotNull(const std::string& table_name,
                            const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = tables_.find(table_name);
  if (it == tables_.end()) return false;
  const TableMetadata& meta = it->second.meta;
  if (!meta.primary_key.empty() && meta.primary_key == column) return true;
  if (meta.not_null_columns.count(column) > 0) return true;
  return meta.observed_not_null.count(column) > 0;
}

Status Catalog::AddNotNull(const std::string& table_name,
                           const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(table_name));
  if (e->table.schema().IndexOfExact(column) < 0) {
    return Status::InvalidArgument("NOT NULL column '" + column +
                                   "' not in schema of table " + table_name);
  }
  e->meta.not_null_columns.insert(column);
  // Constraint edits flip plan decisions (two-valued fast path, antijoin
  // rewrites), so prepared plans must see them as schema changes.
  e->version = ddl_generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return Status::OK();
}

Status Catalog::DropNotNull(const std::string& table_name,
                            const std::string& column) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(table_name));
  e->meta.not_null_columns.erase(column);
  e->version = ddl_generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  return Status::OK();
}

Result<const HashIndex*> Catalog::GetHashIndex(const std::string& table_name,
                                               const std::string& column) const {
  // Shared lock held for the whole build: DropTable needs the exclusive
  // lock, so the entry cannot be erased while the index is constructed;
  // index_mu makes racing builders construct the index exactly once.
  std::shared_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(table_name));
  std::lock_guard<std::mutex> index_lock(e->index_mu);
  auto it = e->hash_indexes.find(column);
  if (it == e->hash_indexes.end()) {
    const int col = e->table.schema().IndexOfExact(column);
    if (col < 0) {
      return Status::NotFound("column '" + column + "' not in table " +
                              table_name);
    }
    it = e->hash_indexes
             .emplace(column, std::make_unique<HashIndex>(e->table, col))
             .first;
  }
  return const_cast<const HashIndex*>(it->second.get());
}

Result<const SortedIndex*> Catalog::GetSortedIndex(
    const std::string& table_name, const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(table_name));
  std::lock_guard<std::mutex> index_lock(e->index_mu);
  auto it = e->sorted_indexes.find(column);
  if (it == e->sorted_indexes.end()) {
    const int col = e->table.schema().IndexOfExact(column);
    if (col < 0) {
      return Status::NotFound("column '" + column + "' not in table " +
                              table_name);
    }
    it = e->sorted_indexes
             .emplace(column, std::make_unique<SortedIndex>(e->table, col))
             .first;
  }
  return const_cast<const SortedIndex*>(it->second.get());
}

Result<const BTreeIndex*> Catalog::GetBTreeIndex(
    const std::string& table_name, const std::string& column) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  NESTRA_ASSIGN_OR_RETURN(Entry * e, GetEntryLocked(table_name));
  std::lock_guard<std::mutex> index_lock(e->index_mu);
  auto it = e->btree_indexes.find(column);
  if (it == e->btree_indexes.end()) {
    const int col = e->table.schema().IndexOfExact(column);
    if (col < 0) {
      return Status::NotFound("column '" + column + "' not in table " +
                              table_name);
    }
    it = e->btree_indexes
             .emplace(column, std::make_unique<BTreeIndex>(e->table, col))
             .first;
  }
  return const_cast<const BTreeIndex*>(it->second.get());
}

std::vector<std::string> Catalog::TableNames() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

uint64_t Catalog::TableVersion(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const auto it = tables_.find(name);
  if (it == tables_.end()) return 0;
  return it->second.version;
}

}  // namespace nestra
