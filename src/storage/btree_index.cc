#include "storage/btree_index.h"

#include <algorithm>
#include <string>

#include "storage/io_sim.h"

namespace nestra {

namespace {

bool Less(const Value& a, const Value& b) {
  return Value::TotalOrderCompare(a, b) < 0;
}

}  // namespace

BTreeIndex::BTreeIndex(int max_keys)
    : max_keys_(std::max(max_keys, 3)), root_(std::make_unique<Node>()) {}

BTreeIndex::BTreeIndex(const Table& table, int column, int max_keys)
    : BTreeIndex(max_keys) {
  column_ = column;
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    const Value& v = table.rows()[i][column];
    if (v.is_null()) continue;
    Insert(v, i);
  }
}

void BTreeIndex::Insert(const Value& key, int64_t row_id) {
  if (key.is_null()) return;
  Value separator;
  std::unique_ptr<Node> sibling =
      InsertInto(root_.get(), key, row_id, &separator);
  if (sibling != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(separator));
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    root_ = std::move(new_root);
    ++height_;
  }
}

std::unique_ptr<BTreeIndex::Node> BTreeIndex::InsertInto(Node* node,
                                                         const Value& key,
                                                         int64_t row_id,
                                                         Value* separator) {
  if (node->leaf) {
    const auto it =
        std::lower_bound(node->keys.begin(), node->keys.end(), key, Less);
    const size_t pos = static_cast<size_t>(it - node->keys.begin());
    if (it != node->keys.end() && Value::TotalOrderCompare(*it, key) == 0) {
      node->rows[pos].push_back(row_id);
      ++num_entries_;
      return nullptr;
    }
    node->keys.insert(it, key);
    node->rows.insert(node->rows.begin() + static_cast<long>(pos), {row_id});
    ++num_keys_;
    ++num_entries_;
    if (static_cast<int>(node->keys.size()) <= max_keys_) return nullptr;
    // Split the leaf: right half moves to the sibling; the separator is the
    // first key of the right half (B+-tree: it stays in the leaf).
    const size_t mid = node->keys.size() / 2;
    auto sibling = std::make_unique<Node>();
    sibling->leaf = true;
    sibling->keys.assign(node->keys.begin() + static_cast<long>(mid),
                         node->keys.end());
    sibling->rows.assign(node->rows.begin() + static_cast<long>(mid),
                         node->rows.end());
    node->keys.resize(mid);
    node->rows.resize(mid);
    sibling->next = node->next;
    node->next = sibling.get();
    *separator = sibling->keys.front();
    return sibling;
  }

  // Internal node: descend.
  const auto it =
      std::upper_bound(node->keys.begin(), node->keys.end(), key, Less);
  const size_t child_idx = static_cast<size_t>(it - node->keys.begin());
  Value child_sep;
  std::unique_ptr<Node> child_sibling =
      InsertInto(node->children[child_idx].get(), key, row_id, &child_sep);
  if (child_sibling == nullptr) return nullptr;
  node->keys.insert(node->keys.begin() + static_cast<long>(child_idx),
                    std::move(child_sep));
  node->children.insert(
      node->children.begin() + static_cast<long>(child_idx) + 1,
      std::move(child_sibling));
  if (static_cast<int>(node->keys.size()) <= max_keys_) return nullptr;
  // Split the internal node: the middle key moves UP (not kept).
  const size_t mid = node->keys.size() / 2;
  auto sibling = std::make_unique<Node>();
  sibling->leaf = false;
  *separator = std::move(node->keys[mid]);
  sibling->keys.assign(
      std::make_move_iterator(node->keys.begin() + static_cast<long>(mid) + 1),
      std::make_move_iterator(node->keys.end()));
  sibling->children.assign(
      std::make_move_iterator(node->children.begin() +
                              static_cast<long>(mid) + 1),
      std::make_move_iterator(node->children.end()));
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  return sibling;
}

const BTreeIndex::Node* BTreeIndex::FindLeaf(const Value& key) const {
  const Node* node = root_.get();
  if (IoSim* sim = IoSim::Get()) {
    // One page read per tree level (the "index rowid" access cost).
    for (int d = 0; d < height_; ++d) {
      sim->IndexProbe(this, key.Hash() + static_cast<size_t>(d),
                      std::max<int64_t>(num_keys_, 1));
    }
  }
  while (!node->leaf) {
    const auto it =
        std::upper_bound(node->keys.begin(), node->keys.end(), key, Less);
    node = node->children[static_cast<size_t>(it - node->keys.begin())].get();
  }
  return node;
}

const BTreeIndex::Node* BTreeIndex::FirstLeaf() const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  return node;
}

void BTreeIndex::CollectFrom(const Node* leaf, size_t idx, const Value& hi,
                             bool hi_inclusive,
                             std::vector<int64_t>* out) const {
  while (leaf != nullptr) {
    for (; idx < leaf->keys.size(); ++idx) {
      if (!hi.is_null()) {
        const int c = Value::TotalOrderCompare(leaf->keys[idx], hi);
        if (c > 0 || (c == 0 && !hi_inclusive)) return;
      }
      out->insert(out->end(), leaf->rows[idx].begin(), leaf->rows[idx].end());
    }
    leaf = leaf->next;
    idx = 0;
  }
}

std::vector<int64_t> BTreeIndex::Range(const Value& lo, bool lo_inclusive,
                                       const Value& hi,
                                       bool hi_inclusive) const {
  std::vector<int64_t> out;
  const Node* leaf;
  size_t idx = 0;
  if (lo.is_null()) {
    leaf = FirstLeaf();
  } else {
    leaf = FindLeaf(lo);
    const auto it =
        std::lower_bound(leaf->keys.begin(), leaf->keys.end(), lo, Less);
    idx = static_cast<size_t>(it - leaf->keys.begin());
    if (!lo_inclusive && it != leaf->keys.end() &&
        Value::TotalOrderCompare(*it, lo) == 0) {
      ++idx;
    }
    if (idx >= leaf->keys.size()) {
      leaf = leaf->next;
      idx = 0;
    }
  }
  CollectFrom(leaf, idx, hi, hi_inclusive, &out);
  return out;
}

std::vector<int64_t> BTreeIndex::Lookup(CmpOp op, const Value& key) const {
  std::vector<int64_t> out;
  if (key.is_null()) return out;
  switch (op) {
    case CmpOp::kEq:
      return Range(key, true, key, true);
    case CmpOp::kLt:
      return Range(Value::Null(), true, key, false);
    case CmpOp::kLe:
      return Range(Value::Null(), true, key, true);
    case CmpOp::kGt:
      return Range(key, false, Value::Null(), true);
    case CmpOp::kGe:
      return Range(key, true, Value::Null(), true);
    case CmpOp::kNe: {
      out = Range(Value::Null(), true, key, false);
      const std::vector<int64_t> above = Range(key, false, Value::Null(), true);
      out.insert(out.end(), above.begin(), above.end());
      return out;
    }
  }
  return out;
}

bool BTreeIndex::Validate(std::string* reason) const {
  std::string local;
  std::string* why = reason != nullptr ? reason : &local;

  // Recursive structural check returning the subtree depth, or -1 on error.
  struct Checker {
    const BTreeIndex* tree;
    std::string* why;

    int Check(const Node* node, const Value* lo, const Value* hi) {
      for (size_t i = 0; i + 1 < node->keys.size(); ++i) {
        if (Value::TotalOrderCompare(node->keys[i], node->keys[i + 1]) >= 0) {
          *why = "keys out of order within a node";
          return -1;
        }
      }
      for (const Value& k : node->keys) {
        if (lo != nullptr && Value::TotalOrderCompare(k, *lo) < 0) {
          *why = "key below the subtree lower bound";
          return -1;
        }
        if (hi != nullptr && Value::TotalOrderCompare(k, *hi) >= 0) {
          if (!(node->leaf && Value::TotalOrderCompare(k, *hi) == 0)) {
            // B+-tree: separators are copies of leaf keys, so a leaf key
            // may equal the upper separator only in the LEFT subtree; keys
            // >= hi are otherwise misplaced.
            *why = "key at/above the subtree upper bound";
            return -1;
          }
          *why = "leaf key equals upper separator (right-biased split "
                 "violated)";
          return -1;
        }
      }
      if (node->leaf) {
        if (node->rows.size() != node->keys.size()) {
          *why = "leaf rows/keys size mismatch";
          return -1;
        }
        for (const auto& r : node->rows) {
          if (r.empty()) {
            *why = "leaf entry with no row ids";
            return -1;
          }
        }
        return 1;
      }
      if (node->children.size() != node->keys.size() + 1) {
        *why = "internal fan-out mismatch";
        return -1;
      }
      int depth = -2;
      for (size_t i = 0; i < node->children.size(); ++i) {
        const Value* child_lo = i == 0 ? lo : &node->keys[i - 1];
        const Value* child_hi = i == node->keys.size() ? hi : &node->keys[i];
        const int d = Check(node->children[i].get(), child_lo, child_hi);
        if (d < 0) return -1;
        if (depth == -2) depth = d;
        if (d != depth) {
          *why = "leaves at different depths";
          return -1;
        }
      }
      return depth + 1;
    }
  };

  Checker checker{this, why};
  const int depth = checker.Check(root_.get(), nullptr, nullptr);
  if (depth < 0) return false;
  if (depth != height_) {
    *why = "height bookkeeping mismatch: measured " + std::to_string(depth) +
           " vs recorded " + std::to_string(height_);
    return false;
  }

  // Leaf chain must enumerate all keys in ascending order.
  int64_t seen_keys = 0;
  int64_t seen_entries = 0;
  const Value* prev = nullptr;
  for (const Node* leaf = FirstLeaf(); leaf != nullptr; leaf = leaf->next) {
    for (size_t i = 0; i < leaf->keys.size(); ++i) {
      if (prev != nullptr &&
          Value::TotalOrderCompare(*prev, leaf->keys[i]) >= 0) {
        *why = "leaf chain out of order";
        return false;
      }
      prev = &leaf->keys[i];
      ++seen_keys;
      seen_entries += static_cast<int64_t>(leaf->rows[i].size());
    }
  }
  if (seen_keys != num_keys_ || seen_entries != num_entries_) {
    *why = "key/entry counters disagree with the leaf chain";
    return false;
  }
  return true;
}

}  // namespace nestra
