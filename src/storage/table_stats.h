#ifndef NESTRA_STORAGE_TABLE_STATS_H_
#define NESTRA_STORAGE_TABLE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/table.h"

namespace nestra {

/// Rows per zone-map granule. Matches RowBatch::kDefaultCapacity (1024) and
/// is a whole number of IoSim pages (64 rows/page -> 16 pages), so skipping
/// a granule skips exactly its pages and a kept granule charges the same
/// SeqRange the unpruned vectorized scan would.
inline constexpr int64_t kZoneGranuleRows = 1024;

/// \brief Per-column summary collected once at Catalog::RegisterTable.
///
/// Numeric columns (int64 / float64 / date) carry a [min, max] range over
/// their non-NULL values; string columns only carry null / distinct counts.
/// `distinct` is exact for small columns and a deterministic HyperLogLog
/// estimate beyond that — no RNG, no clock (see lint check 1): the sketch
/// hashes values with a fixed mixer.
struct ColumnStats {
  int64_t null_count = 0;
  int64_t non_null_count = 0;

  /// True when at least one non-NULL value was seen and every non-NULL
  /// value was numeric; `min`/`max` are their double images.
  bool has_range = false;
  double min = 0.0;
  double max = 0.0;

  /// True when every non-NULL value held an int64 (dates included). Then
  /// `min_i64`/`max_i64` are the exact integer range — what the perfect
  /// (dense-array) hash join keys on.
  bool integer_only = false;
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;

  /// Distinct non-NULL values (SQL key equality: int 1 == float 1.0).
  int64_t distinct = 0;
  bool distinct_exact = false;
};

/// \brief Per-granule min/max entry of one column.
struct ZoneEntry {
  bool all_null = true;    // the granule holds no non-NULL value
  bool has_range = false;  // >=1 non-NULL numeric value; min/max valid
  double min = 0.0;
  double max = 0.0;
};

/// \brief Zone map of a table: per-column min/max at kZoneGranuleRows
/// granularity, granule-major.
struct TableZoneMap {
  int64_t num_granules = 0;
  int num_columns = 0;
  std::vector<ZoneEntry> entries;  // entries[g * num_columns + c]

  const ZoneEntry& At(int64_t granule, int column) const {
    return entries[static_cast<size_t>(granule * num_columns + column)];
  }
};

/// \brief Everything the planner knows about a base table's data. Collected
/// once at registration (tables are immutable afterwards) and invalidated
/// with the entry by the TableVersion mechanism: a re-registered table gets
/// fresh stats and a new version, so prepared plans that baked in stats
/// decisions fail stale instead of running on the old numbers.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;  // schema order
  TableZoneMap zones;

  std::string ToString() const;  // one line per column, for \stats and tests
};

/// One-pass collection: null counts, numeric min/max, distinct estimates and
/// the zone map together. Deterministic — same table, same stats.
TableStats CollectTableStats(const Table& table);

}  // namespace nestra

#endif  // NESTRA_STORAGE_TABLE_STATS_H_
