#include "storage/sorted_index.h"

#include <algorithm>

namespace nestra {

SortedIndex::SortedIndex(const Table& table, int column) : column_(column) {
  entries_.reserve(static_cast<size_t>(table.num_rows()));
  for (int64_t i = 0; i < table.num_rows(); ++i) {
    const Value& v = table.rows()[i][column];
    if (v.is_null()) continue;
    entries_.push_back({v, i});
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              const int c = Value::TotalOrderCompare(a.value, b.value);
              if (c != 0) return c < 0;
              return a.row < b.row;
            });
}

size_t SortedIndex::LowerBound(const Value& key) const {
  size_t lo = 0, hi = entries_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Value::TotalOrderCompare(entries_[mid].value, key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t SortedIndex::UpperBound(const Value& key) const {
  size_t lo = 0, hi = entries_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (Value::TotalOrderCompare(entries_[mid].value, key) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<int64_t> SortedIndex::Lookup(CmpOp op, const Value& key) const {
  std::vector<int64_t> out;
  if (key.is_null()) return out;  // NULL probes match nothing
  size_t begin = 0;
  size_t end = entries_.size();
  switch (op) {
    case CmpOp::kEq:
      begin = LowerBound(key);
      end = UpperBound(key);
      break;
    case CmpOp::kLt:
      end = LowerBound(key);
      break;
    case CmpOp::kLe:
      end = UpperBound(key);
      break;
    case CmpOp::kGt:
      begin = UpperBound(key);
      break;
    case CmpOp::kGe:
      begin = LowerBound(key);
      break;
    case CmpOp::kNe:
      // Everything except the equal run; two contiguous slices.
      out.reserve(entries_.size());
      for (size_t i = 0; i < LowerBound(key); ++i) {
        out.push_back(entries_[i].row);
      }
      for (size_t i = UpperBound(key); i < entries_.size(); ++i) {
        out.push_back(entries_[i].row);
      }
      return out;
  }
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) out.push_back(entries_[i].row);
  return out;
}

std::vector<int64_t> SortedIndex::Range(const Value& lo, bool lo_inclusive,
                                        const Value& hi,
                                        bool hi_inclusive) const {
  size_t begin = 0;
  size_t end = entries_.size();
  if (!lo.is_null()) begin = lo_inclusive ? LowerBound(lo) : UpperBound(lo);
  if (!hi.is_null()) end = hi_inclusive ? UpperBound(hi) : LowerBound(hi);
  std::vector<int64_t> out;
  if (begin >= end) return out;
  out.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) out.push_back(entries_[i].row);
  return out;
}

}  // namespace nestra
