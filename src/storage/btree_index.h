#ifndef NESTRA_STORAGE_BTREE_INDEX_H_
#define NESTRA_STORAGE_BTREE_INDEX_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/table.h"

namespace nestra {

/// \brief An in-memory B+-tree over one column of a table: ordered keys in
/// internal nodes, (key, row-id list) entries in chained leaves — the
/// structure System A "automatically built on the primary key of each base
/// table" (Section 5.1), here serving ordered and inequality probes.
///
/// Duplicates are supported (each leaf entry carries every row id for its
/// key); NULL key values are not indexed (no SQL comparison can select
/// them). The index is build-once: the engine's tables are immutable after
/// catalog registration, so deletion/rebalancing is intentionally out of
/// scope. `Insert` remains public for the structural property tests.
class BTreeIndex {
 public:
  /// `max_keys` is the node capacity (fan-out - 1); small values make the
  /// structural tests exercise deep trees.
  explicit BTreeIndex(int max_keys = 63);

  /// Builds over `table.rows()[i][column]`.
  BTreeIndex(const Table& table, int column, int max_keys = 63);

  BTreeIndex(const BTreeIndex&) = delete;
  BTreeIndex& operator=(const BTreeIndex&) = delete;

  void Insert(const Value& key, int64_t row_id);

  /// Row ids whose key satisfies `key-of-row  op  probe`... more precisely:
  /// rows r with `value(r) op probe` is NOT the contract — like SortedIndex,
  /// Lookup returns rows r whose value v satisfies `v op key` for
  /// op in {=, <, <=, >, >=, <>}. NULL probes match nothing.
  std::vector<int64_t> Lookup(CmpOp op, const Value& key) const;

  /// Rows with lo <= v <= hi (bounds optional via NULL, inclusivity flags).
  std::vector<int64_t> Range(const Value& lo, bool lo_inclusive,
                             const Value& hi, bool hi_inclusive) const;

  int64_t num_keys() const { return num_keys_; }
  int64_t num_entries() const { return num_entries_; }
  int height() const { return height_; }
  int column() const { return column_; }

  /// Checks the B+-tree invariants (key ordering within nodes, separator
  /// correctness, uniform leaf depth, node fill, leaf chain order);
  /// returns false and writes a reason on violation. For tests.
  bool Validate(std::string* reason = nullptr) const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<Value> keys;
    // Internal: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaf: rows[i] are the row ids for keys[i].
    std::vector<std::vector<int64_t>> rows;
    Node* next = nullptr;  // leaf chain
  };

  // Returns the leaf that should contain `key`, charging simulated I/O for
  // the root-to-leaf path.
  const Node* FindLeaf(const Value& key) const;

  // Insert into subtree; on split returns the new right sibling and sets
  // *separator to the key routed to the parent.
  std::unique_ptr<Node> InsertInto(Node* node, const Value& key,
                                   int64_t row_id, Value* separator);

  // First leaf of the chain.
  const Node* FirstLeaf() const;

  // Appends all row ids of entries in [start_leaf/start_idx, end) matching
  // the bound predicate.
  void CollectFrom(const Node* leaf, size_t idx, const Value& hi,
                   bool hi_inclusive, std::vector<int64_t>* out) const;

  int max_keys_;
  int column_ = -1;
  std::unique_ptr<Node> root_;
  int height_ = 1;
  int64_t num_keys_ = 0;
  int64_t num_entries_ = 0;
};

}  // namespace nestra

#endif  // NESTRA_STORAGE_BTREE_INDEX_H_
