#include "storage/catalog_io.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "storage/csv_io.h"

namespace nestra {

namespace {

const char* kManifestName = "manifest.nestra";

const char* TypeName(TypeId type) {
  switch (type) {
    case TypeId::kInt64:
      return "int64";
    case TypeId::kFloat64:
      return "float64";
    case TypeId::kString:
      return "string";
    case TypeId::kDate:
      return "date";
  }
  return "?";
}

Result<TypeId> TypeFromName(const std::string& name) {
  if (name == "int64") return TypeId::kInt64;
  if (name == "float64") return TypeId::kFloat64;
  if (name == "string") return TypeId::kString;
  if (name == "date") return TypeId::kDate;
  return Status::ParseError("unknown type in manifest: " + name);
}

}  // namespace

Status SaveCatalog(const Catalog& catalog, const std::string& directory) {
  std::error_code ec;
  std::filesystem::create_directories(directory, ec);
  if (ec) {
    return Status::InvalidArgument("cannot create directory " + directory +
                                   ": " + ec.message());
  }

  std::ostringstream manifest;
  manifest << "# nestra catalog manifest v1\n";
  for (const std::string& name : catalog.TableNames()) {
    NESTRA_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(name));
    NESTRA_ASSIGN_OR_RETURN(const TableMetadata* meta,
                            catalog.GetMetadata(name));
    manifest << "table " << name << "\n";
    for (const Field& f : table->schema().fields()) {
      manifest << "column " << f.name << " " << TypeName(f.type) << " "
               << (f.nullable ? "null" : "notnull") << "\n";
    }
    if (!meta->primary_key.empty()) {
      manifest << "pk " << meta->primary_key << "\n";
    }
    for (const std::string& c : meta->not_null_columns) {
      manifest << "notnull " << c << "\n";
    }
    manifest << "end\n";
    NESTRA_RETURN_NOT_OK(
        WriteCsvFile(*table, directory + "/" + name + ".csv"));
  }

  std::ofstream out(directory + "/" + kManifestName, std::ios::binary);
  if (!out) {
    return Status::InvalidArgument("cannot write manifest in " + directory);
  }
  out << manifest.str();
  if (!out.good()) return Status::Internal("manifest write failed");
  return Status::OK();
}

Status LoadCatalog(const std::string& directory, Catalog* catalog) {
  std::ifstream in(directory + "/" + kManifestName, std::ios::binary);
  if (!in) {
    return Status::NotFound("no catalog manifest in " + directory);
  }

  std::string line;
  int line_no = 0;
  std::string table_name;
  std::vector<Field> fields;
  std::string pk;
  std::set<std::string> not_null;
  bool in_table = false;

  auto finish_table = [&]() -> Status {
    Schema schema{fields};
    NESTRA_ASSIGN_OR_RETURN(
        Table table, ReadCsvFile(directory + "/" + table_name + ".csv",
                                 schema));
    NESTRA_RETURN_NOT_OK(catalog->RegisterTable(table_name, std::move(table),
                                                pk, std::move(not_null)));
    table_name.clear();
    fields.clear();
    pk.clear();
    not_null.clear();
    in_table = false;
    return Status::OK();
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    std::istringstream iss(line);
    std::string keyword;
    iss >> keyword;
    const std::string where =
        " (manifest line " + std::to_string(line_no) + ")";
    if (keyword == "table") {
      if (in_table) {
        return Status::ParseError("nested 'table' directive" + where);
      }
      iss >> table_name;
      if (table_name.empty()) {
        return Status::ParseError("missing table name" + where);
      }
      in_table = true;
    } else if (keyword == "column") {
      if (!in_table) return Status::ParseError("stray 'column'" + where);
      std::string name, type_name, nullability;
      iss >> name >> type_name >> nullability;
      NESTRA_ASSIGN_OR_RETURN(TypeId type, TypeFromName(type_name));
      if (nullability != "null" && nullability != "notnull") {
        return Status::ParseError("bad nullability '" + nullability + "'" +
                                  where);
      }
      fields.emplace_back(name, type, nullability == "null");
    } else if (keyword == "pk") {
      if (!in_table) return Status::ParseError("stray 'pk'" + where);
      iss >> pk;
    } else if (keyword == "notnull") {
      if (!in_table) return Status::ParseError("stray 'notnull'" + where);
      std::string col;
      iss >> col;
      not_null.insert(col);
    } else if (keyword == "end") {
      if (!in_table) return Status::ParseError("stray 'end'" + where);
      NESTRA_RETURN_NOT_OK(finish_table());
    } else {
      return Status::ParseError("unknown manifest directive '" + keyword +
                                "'" + where);
    }
  }
  if (in_table) {
    return Status::ParseError("manifest ended inside a table block");
  }
  return Status::OK();
}

}  // namespace nestra
