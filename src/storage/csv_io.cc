#include "storage/csv_io.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/date.h"

namespace nestra {

namespace {

// Splits one logical CSV record starting at `*pos`; advances past the
// terminating newline. Handles quoted fields with embedded separators,
// quotes ("") and newlines.
Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                             size_t* pos,
                                             std::vector<bool>* quoted) {
  std::vector<std::string> fields;
  quoted->clear();
  std::string field;
  bool in_quotes = false;
  bool was_quoted = false;
  size_t i = *pos;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty()) {
      in_quotes = true;
      was_quoted = true;
      ++i;
      continue;
    }
    if (c == ',') {
      fields.push_back(std::move(field));
      quoted->push_back(was_quoted);
      field.clear();
      was_quoted = false;
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // End of record; consume \r\n or \n.
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
      break;
    }
    field += c;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(field));
  quoted->push_back(was_quoted);
  *pos = i;
  return fields;
}

Result<Value> ParseCell(const std::string& cell, bool was_quoted,
                        const Field& field, int64_t line) {
  if (cell.empty() && !was_quoted) return Value::Null();
  const std::string where =
      " (line " + std::to_string(line) + ", column '" + field.name + "')";
  switch (field.type) {
    case TypeId::kInt64: {
      char* end = nullptr;
      errno = 0;
      const long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str() || *end != '\0') {
        return Status::ParseError("invalid integer '" + cell + "'" + where);
      }
      // strtoll saturates to ±INT64_MAX/MIN on overflow; loading the
      // saturated value would silently corrupt the column.
      if (errno == ERANGE) {
        return Status::InvalidArgument("integer out of range '" + cell + "'" +
                                       where);
      }
      return Value::Int64(v);
    }
    case TypeId::kFloat64: {
      char* end = nullptr;
      errno = 0;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::ParseError("invalid float '" + cell + "'" + where);
      }
      // ERANGE with ±HUGE_VAL is overflow; ERANGE on a subnormal result is
      // underflow, which strtod still represents as closely as possible.
      if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
        return Status::InvalidArgument("float out of range '" + cell + "'" +
                                       where);
      }
      return Value::Float64(v);
    }
    case TypeId::kDate: {
      const Result<int64_t> days = ParseDate(cell);
      if (!days.ok()) {
        return Status::ParseError("invalid date '" + cell + "'" + where);
      }
      return Value::Date(*days);
    }
    case TypeId::kString:
      return Value::String(cell);
  }
  return Status::Internal("unhandled type");
}

std::string RenderCell(const Value& v, TypeId type) {
  if (v.is_null()) return "";
  std::string text;
  if (type == TypeId::kDate && v.is_int()) {
    text = FormatDate(v.int64());
  } else {
    // Value::ToString renders doubles in shortest-round-trip form, so
    // persistence reproduces the bit pattern exactly.
    text = v.ToString();
  }
  if (type == TypeId::kString) {
    const bool needs_quotes =
        text.find_first_of(",\"\n\r") != std::string::npos || text.empty();
    if (needs_quotes) {
      std::string quoted = "\"";
      for (const char c : text) {
        if (c == '"') quoted += '"';
        quoted += c;
      }
      quoted += '"';
      return quoted;
    }
  }
  return text;
}

}  // namespace

Result<Table> ReadCsv(const std::string& text, const Schema& schema) {
  size_t pos = 0;
  std::vector<bool> quoted;

  // Header.
  if (text.empty()) return Status::ParseError("empty CSV input");
  // A UTF-8 byte-order mark before the header would otherwise become part
  // of the first column name and fail the schema match.
  if (text.size() >= 3 && text[0] == '\xEF' && text[1] == '\xBB' &&
      text[2] == '\xBF') {
    pos = 3;
  }
  NESTRA_ASSIGN_OR_RETURN(std::vector<std::string> header,
                          ParseRecord(text, &pos, &quoted));
  if (static_cast<int>(header.size()) != schema.num_fields()) {
    return Status::ParseError(
        "CSV header has " + std::to_string(header.size()) +
        " columns, schema expects " + std::to_string(schema.num_fields()));
  }
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (UnqualifiedName(header[i]) != UnqualifiedName(schema.field(i).name)) {
      return Status::ParseError("CSV header column " + std::to_string(i) +
                                " is '" + header[i] + "', schema expects '" +
                                schema.field(i).name + "'");
    }
  }

  Table out{schema};
  // Size the row vector up front from the newline count — exact for files
  // without quoted embedded newlines, a harmless overestimate otherwise.
  size_t newlines = 0;
  for (size_t i = pos; i < text.size(); ++i) {
    if (text[i] == '\n') ++newlines;
  }
  out.Reserve(newlines + 1);
  int64_t line = 1;
  while (pos < text.size()) {
    ++line;
    NESTRA_ASSIGN_OR_RETURN(std::vector<std::string> cells,
                            ParseRecord(text, &pos, &quoted));
    // A file ending in a newline yields one spurious empty record — but
    // only when the field was NOT quoted: `""` as the last line is a real
    // one-column row holding an empty string, and dropping it would break
    // the write/read round trip for single-string-column tables.
    if (cells.size() == 1 && cells[0].empty() && !quoted[0] &&
        pos >= text.size()) {
      break;
    }
    if (static_cast<int>(cells.size()) != schema.num_fields()) {
      return Status::ParseError("CSV line " + std::to_string(line) + " has " +
                                std::to_string(cells.size()) +
                                " columns, schema expects " +
                                std::to_string(schema.num_fields()));
    }
    Row row;
    row.Reserve(cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
      NESTRA_ASSIGN_OR_RETURN(
          Value v, ParseCell(cells[i], quoted[i],
                             schema.field(static_cast<int>(i)), line));
      row.Append(std::move(v));
    }
    out.AppendUnchecked(std::move(row));
  }
  return out;
}

Result<Table> ReadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open CSV file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ReadCsv(buffer.str(), schema);
}

std::string WriteCsv(const Table& table) {
  std::ostringstream oss;
  const Schema& schema = table.schema();
  for (int i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) oss << ',';
    oss << UnqualifiedName(schema.field(i).name);
  }
  oss << '\n';
  for (const Row& row : table.rows()) {
    for (int i = 0; i < schema.num_fields(); ++i) {
      if (i > 0) oss << ',';
      oss << RenderCell(row[i], schema.field(i).type);
    }
    oss << '\n';
  }
  return oss.str();
}

Status WriteCsvFile(const Table& table, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  out << WriteCsv(table);
  if (!out.good()) return Status::Internal("write failed: " + path);
  return Status::OK();
}

}  // namespace nestra
